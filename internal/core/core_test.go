package core

import (
	"errors"
	"strings"
	"testing"

	"timedmedia/internal/compose"
	"timedmedia/internal/media"
	"timedmedia/internal/timebase"
)

func videoDesc() media.Descriptor {
	return media.PALVideoType(64, 48, media.QualityVHS, media.EncodingVJPG).NewDescriptor(100)
}

func TestClassLayers(t *testing.T) {
	// The Figure 5 stack: BLOB(0) → non-derived(1) → derived(2) →
	// multimedia(3).
	if ClassNonDerived.Layer() != 1 || ClassDerived.Layer() != 2 || ClassMultimedia.Layer() != 3 {
		t.Error("layer numbering wrong")
	}
	if Class(99).Layer() != -1 {
		t.Error("unknown class layer")
	}
}

func TestClassStrings(t *testing.T) {
	if !strings.Contains(ClassDerived.String(), "derived") {
		t.Errorf("%q", ClassDerived.String())
	}
	if !strings.Contains(ClassMultimedia.String(), "multimedia") {
		t.Errorf("%q", ClassMultimedia.String())
	}
}

func TestValidateNonDerived(t *testing.T) {
	obj := &Object{Name: "v", Class: ClassNonDerived, Kind: media.KindVideo, Desc: videoDesc(), Blob: 1, Track: "video1"}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *obj
	bad.Track = ""
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("no track: %v", err)
	}
	bad = *obj
	bad.Desc = nil
	if err := bad.Validate(); !errors.Is(err, ErrNilDescriptor) {
		t.Errorf("no descriptor: %v", err)
	}
	bad = *obj
	bad.Derivation = &Derivation{Op: "x", Inputs: []ID{1}}
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("extra derivation: %v", err)
	}
}

func TestValidateDerived(t *testing.T) {
	obj := &Object{Name: "d", Class: ClassDerived, Kind: media.KindVideo,
		Derivation: &Derivation{Op: "video-edit", Inputs: []ID{1}, Params: []byte("{}")}}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *obj
	bad.Derivation = nil
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("nil derivation: %v", err)
	}
	bad = *obj
	bad.Derivation = &Derivation{Op: "", Inputs: []ID{1}}
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("empty op: %v", err)
	}
	bad = *obj
	bad.Blob = 3
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("blob on derived: %v", err)
	}
}

func TestValidateMultimedia(t *testing.T) {
	obj := &Object{Name: "m", Class: ClassMultimedia,
		Multimedia: &MultimediaSpec{Time: timebase.Millis, Components: []ComponentRef{{Object: 1, Start: 0}}}}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *obj
	bad.Multimedia = &MultimediaSpec{Time: timebase.Millis}
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("no components: %v", err)
	}
	bad = *obj
	bad.Multimedia = &MultimediaSpec{Components: []ComponentRef{{Object: 1}}}
	if err := bad.Validate(); !errors.Is(err, ErrBinding) {
		t.Errorf("no axis: %v", err)
	}
}

func TestValidateNoName(t *testing.T) {
	obj := &Object{Class: ClassNonDerived, Desc: videoDesc(), Blob: 1, Track: "v"}
	if err := obj.Validate(); !errors.Is(err, ErrNoName) {
		t.Errorf("err = %v", err)
	}
}

func TestDerivationSize(t *testing.T) {
	d := &Derivation{Op: "video-edit", Inputs: []ID{1, 2}, Params: []byte(`{"entries":[]}`)}
	// Tiny: the heart of the C1 storage claim.
	if d.SizeBytes() > 64 {
		t.Errorf("derivation size = %d", d.SizeBytes())
	}
}

func TestObjectStrings(t *testing.T) {
	nd := &Object{ID: 1, Name: "v", Class: ClassNonDerived, Blob: 2, Track: "video1"}
	if s := nd.String(); !strings.Contains(s, "blob-2") || !strings.Contains(s, "video1") {
		t.Errorf("%q", s)
	}
	de := &Object{ID: 2, Name: "cut", Class: ClassDerived, Derivation: &Derivation{Op: "video-edit", Inputs: []ID{1}}}
	if s := de.String(); !strings.Contains(s, "video-edit") {
		t.Errorf("%q", s)
	}
	mm := &Object{ID: 3, Name: "m", Class: ClassMultimedia, Multimedia: &MultimediaSpec{Components: make([]ComponentRef, 3)}}
	if s := mm.String(); !strings.Contains(s, "3 components") {
		t.Errorf("%q", s)
	}
}

func TestComponentRefRegion(t *testing.T) {
	r := &compose.Region{X: 1, Y: 2, W: 100, H: 50, Z: 3}
	c := ComponentRef{Object: 7, Start: 500, Region: r}
	if c.Region.W != 100 {
		t.Error("region lost")
	}
}

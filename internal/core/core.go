// Package core defines the unified object model of Gibbs et al.,
// SIGMOD 1994: media objects (non-derived and derived), derivation
// objects, and multimedia objects, related exactly as in the paper's
// Figure 4 instance diagram and stacked in the Figure 5 layers
//
//	multimedia object        — temporal/spatial composition
//	media objects (derived)  — derivation
//	media objects (non-der.) — interpretation
//	BLOB                     — uninterpreted bytes
//
// The package is pure schema: evaluation (expansion, playback,
// persistence) lives in catalog and player.
package core

import (
	"errors"
	"fmt"

	"timedmedia/internal/blob"
	"timedmedia/internal/compose"
	"timedmedia/internal/media"
	"timedmedia/internal/timebase"
)

// ID identifies an object in a catalog.
type ID uint64

// String formats the ID.
func (id ID) String() string { return fmt.Sprintf("obj-%d", uint64(id)) }

// Class discriminates the Figure 5 layers above the BLOB.
type Class int

// Object classes.
const (
	// ClassNonDerived is a media object bound to an interpretation
	// track (Figure 5's bottom media layer).
	ClassNonDerived Class = iota
	// ClassDerived is a media object defined by a derivation object.
	ClassDerived
	// ClassMultimedia is a composed multimedia object.
	ClassMultimedia
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNonDerived:
		return "media object (non-derived)"
	case ClassDerived:
		return "media object (derived)"
	case ClassMultimedia:
		return "multimedia object"
	default:
		return "unknown"
	}
}

// Layer returns the Figure 5 layer number (BLOBs are layer 0).
func (c Class) Layer() int {
	switch c {
	case ClassNonDerived:
		return 1
	case ClassDerived:
		return 2
	case ClassMultimedia:
		return 3
	default:
		return -1
	}
}

// Derivation is a derivation object (Definition 6): "references to the
// media objects and parameter values used". It is deliberately tiny —
// storing it instead of the derived elements is the paper's storage
// and non-destructive-editing win.
type Derivation struct {
	// Op names the registered operator ("video-edit", ...).
	Op string
	// Inputs are the antecedent media objects, in operator argument
	// order.
	Inputs []ID
	// Params is the operator's JSON-encoded parameter record.
	Params []byte
}

// SizeBytes returns the derivation object's storage footprint.
func (d *Derivation) SizeBytes() int {
	return len(d.Op) + 8*len(d.Inputs) + len(d.Params)
}

// ComponentRef places a catalog object inside a multimedia object.
type ComponentRef struct {
	Object ID
	// Start is the offset on the multimedia object's axis.
	Start int64
	// Region is the optional spatial placement.
	Region *compose.Region
}

// MultimediaSpec is the stored form of a composition: the axis time
// system plus component references. The catalog materializes it into a
// compose.Multimedia with real durations on demand.
type MultimediaSpec struct {
	Time       timebase.System
	Components []ComponentRef
	Syncs      []compose.SyncConstraint
}

// Object is one catalog entry.
type Object struct {
	ID    ID
	Name  string
	Class Class
	// Kind is the media kind for media objects; KindUnknown for
	// multimedia objects.
	Kind media.Kind
	// Desc is the media descriptor (media objects only).
	Desc media.Descriptor
	// Attrs carries domain attributes (title, director, language, ...)
	// — the VideoClip-style attributes of Section 4's opening.
	Attrs map[string]string

	// Blob and Track bind non-derived objects to an interpretation.
	Blob  blob.ID
	Track string

	// Derivation defines derived objects.
	Derivation *Derivation

	// Multimedia defines composed objects.
	Multimedia *MultimediaSpec
}

// Clone returns a deep copy of the object: mutating the copy — its
// attribute map, derivation inputs/params, components or syncs — never
// aliases the original. The descriptor is shared: media.Descriptor
// implementations are immutable by contract.
func (o *Object) Clone() *Object {
	c := *o
	if o.Attrs != nil {
		c.Attrs = make(map[string]string, len(o.Attrs))
		for k, v := range o.Attrs {
			c.Attrs[k] = v
		}
	}
	if o.Derivation != nil {
		d := *o.Derivation
		d.Inputs = append([]ID(nil), o.Derivation.Inputs...)
		d.Params = append([]byte(nil), o.Derivation.Params...)
		c.Derivation = &d
	}
	if o.Multimedia != nil {
		m := MultimediaSpec{Time: o.Multimedia.Time}
		for _, comp := range o.Multimedia.Components {
			if comp.Region != nil {
				r := *comp.Region
				comp.Region = &r
			}
			m.Components = append(m.Components, comp)
		}
		m.Syncs = append([]compose.SyncConstraint(nil), o.Multimedia.Syncs...)
		c.Multimedia = &m
	}
	return &c
}

// Validation errors.
var (
	ErrNoName        = errors.New("core: object must be named")
	ErrBinding       = errors.New("core: class/binding mismatch")
	ErrNilDescriptor = errors.New("core: media object without descriptor")
)

// Validate checks structural consistency of the object record.
func (o *Object) Validate() error {
	if o.Name == "" {
		return ErrNoName
	}
	switch o.Class {
	case ClassNonDerived:
		if o.Blob == 0 || o.Track == "" {
			return fmt.Errorf("%w: non-derived object needs blob+track", ErrBinding)
		}
		if o.Derivation != nil || o.Multimedia != nil {
			return fmt.Errorf("%w: non-derived object with derivation/composition", ErrBinding)
		}
		if o.Desc == nil {
			return ErrNilDescriptor
		}
	case ClassDerived:
		if o.Derivation == nil {
			return fmt.Errorf("%w: derived object without derivation", ErrBinding)
		}
		if o.Blob != 0 || o.Track != "" || o.Multimedia != nil {
			return fmt.Errorf("%w: derived object with blob/composition binding", ErrBinding)
		}
		if o.Derivation.Op == "" || len(o.Derivation.Inputs) == 0 {
			return fmt.Errorf("%w: empty derivation", ErrBinding)
		}
	case ClassMultimedia:
		if o.Multimedia == nil || len(o.Multimedia.Components) == 0 {
			return fmt.Errorf("%w: multimedia object without components", ErrBinding)
		}
		if o.Blob != 0 || o.Derivation != nil {
			return fmt.Errorf("%w: multimedia object with media binding", ErrBinding)
		}
		if !o.Multimedia.Time.Valid() {
			return fmt.Errorf("%w: multimedia object without time axis", ErrBinding)
		}
	default:
		return fmt.Errorf("%w: class %d", ErrBinding, o.Class)
	}
	return nil
}

// String renders a one-line summary.
func (o *Object) String() string {
	switch o.Class {
	case ClassNonDerived:
		return fmt.Sprintf("%v %q [%s] ← %v/%s", o.ID, o.Name, o.Class, o.Blob, o.Track)
	case ClassDerived:
		return fmt.Sprintf("%v %q [%s] = %s%v", o.ID, o.Name, o.Class, o.Derivation.Op, o.Derivation.Inputs)
	default:
		n := 0
		if o.Multimedia != nil {
			n = len(o.Multimedia.Components)
		}
		return fmt.Sprintf("%v %q [%s] with %d components", o.ID, o.Name, o.Class, n)
	}
}

package codec

import "encoding/binary"

// The entropy layer shared by vjpg and vmpg: signed residuals are
// zigzag-mapped to unsigned varints; runs of zeros collapse to a
// zero marker followed by the run length.
//
// Token grammar (uvarint based):
//
//	0, n   — a run of n zero values
//	k > 0  — the single value unzigzag(k)

// zigzag maps signed to unsigned preserving small magnitudes.
func zigzag(v int32) uint64 {
	return uint64(uint32((v << 1) ^ (v >> 31)))
}

// unzigzag inverts zigzag.
func unzigzag(u uint64) int32 {
	return int32(uint32(u)>>1) ^ -int32(u&1)
}

// entropyEncode appends the encoded form of vals to dst and returns
// the extended slice.
func entropyEncode(dst []byte, vals []int32) []byte {
	i := 0
	for i < len(vals) {
		if vals[i] == 0 {
			run := 0
			for i < len(vals) && vals[i] == 0 {
				run++
				i++
			}
			dst = binary.AppendUvarint(dst, 0)
			dst = binary.AppendUvarint(dst, uint64(run))
			continue
		}
		dst = binary.AppendUvarint(dst, zigzag(vals[i]))
		i++
	}
	return dst
}

// entropyDecode reads exactly n values from src, returning them and
// the number of bytes consumed. It fails with ErrCorrupt on malformed
// input or if src encodes a different count.
func entropyDecode(src []byte, n int) ([]int32, int, error) {
	out := make([]int32, 0, n)
	off := 0
	for len(out) < n {
		k, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, 0, ErrCorrupt
		}
		off += sz
		if k == 0 {
			run, sz2 := binary.Uvarint(src[off:])
			if sz2 <= 0 || run == 0 || len(out)+int(run) > n {
				return nil, 0, ErrCorrupt
			}
			off += sz2
			for j := uint64(0); j < run; j++ {
				out = append(out, 0)
			}
			continue
		}
		out = append(out, unzigzag(k))
	}
	return out, off, nil
}

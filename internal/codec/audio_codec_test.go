package codec

import (
	"math"
	"testing"
	"testing/quick"

	"timedmedia/internal/audio"
)

func TestPCM16RoundTripLossless(t *testing.T) {
	b := audio.Sweep(4410, 2, 100, 4000, 44100, 0.8)
	data := PCMEncode16(b)
	if len(data) != len(b.Samples)*2 {
		t.Errorf("encoded %d bytes", len(data))
	}
	got, err := PCMDecode16(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(audio.SNR(b, got), 1) {
		t.Error("PCM16 round trip not lossless")
	}
}

func TestPCM16RoundTripProperty(t *testing.T) {
	f := func(samples []int16) bool {
		b := &audio.Buffer{Channels: 1, Samples: samples}
		got, err := PCMDecode16(PCMEncode16(b), 1)
		if err != nil {
			return false
		}
		if len(got.Samples) != len(samples) {
			return false
		}
		for i := range samples {
			if got.Samples[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPCMDecode16Errors(t *testing.T) {
	if _, err := PCMDecode16([]byte{1}, 1); err != ErrCorrupt {
		t.Errorf("odd length: %v", err)
	}
	if _, err := PCMDecode16([]byte{1, 2}, 0); err != ErrCorrupt {
		t.Errorf("zero channels: %v", err)
	}
	if _, err := PCMDecode16([]byte{1, 2}, 3); err != ErrCorrupt {
		t.Errorf("misaligned channels: %v", err)
	}
}

func TestPCM8IsLossyButClose(t *testing.T) {
	b := audio.Sine(4410, 1, 440, 44100, 0.8)
	got, err := PCMDecode8(PCMEncode8(b), 1)
	if err != nil {
		t.Fatal(err)
	}
	snr := audio.SNR(b, got)
	if snr < 30 || math.IsInf(snr, 1) {
		t.Errorf("PCM8 SNR = %v, want lossy but > 30 dB", snr)
	}
	// 2:1 size.
	if len(PCMEncode8(b))*2 != len(PCMEncode16(b)) {
		t.Error("PCM8 must be half the size of PCM16")
	}
}

func TestADPCMRoundTripQuality(t *testing.T) {
	b := audio.Sine(8820, 2, 440, 44100, 0.6)
	blocks, err := ADPCMEncode(b, 1764)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ADPCMDecode(blocks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frames() != b.Frames() {
		t.Fatalf("frames = %d, want %d", got.Frames(), b.Frames())
	}
	snr := audio.SNR(b, got)
	if snr < 20 {
		t.Errorf("ADPCM SNR = %v dB, want > 20", snr)
	}
}

func TestADPCMCompressionRatio(t *testing.T) {
	// "Adaptive Differential Pulse Code Modulation ... a form of audio
	// compression": 4 bits/sample vs 16 → ≈4:1 (minus block headers).
	b := audio.Sine(44100, 2, 440, 44100, 0.6)
	blocks, _ := ADPCMEncode(b, 1764)
	var enc int
	for _, blk := range blocks {
		enc += len(blk.Data)
	}
	raw := len(PCMEncode16(b))
	ratio := float64(raw) / float64(enc)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("ADPCM ratio = %.2f, want ≈4", ratio)
	}
}

func TestADPCMBlockParamsVary(t *testing.T) {
	// The per-block parameters must actually vary over a non-stationary
	// signal — that is what makes ADPCM streams heterogeneous.
	b := audio.Sweep(44100, 1, 50, 8000, 44100, 0.9)
	blocks, _ := ADPCMEncode(b, 1764)
	varied := false
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Params.StepIndex[0] != blocks[0].Params.StepIndex[0] ||
			blocks[i].Params.Predictor[0] != blocks[0].Params.Predictor[0] {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("ADPCM block parameters never varied over a sweep")
	}
}

func TestADPCMBlocksDecodeIndependently(t *testing.T) {
	// Decoding block k alone must agree with decoding the whole stream,
	// because headers carry the entry state.
	b := audio.Sweep(8820, 2, 100, 2000, 44100, 0.7)
	blocks, _ := ADPCMEncode(b, 882)
	full, _ := ADPCMDecode(blocks, 2)
	off := 0
	for _, blk := range blocks {
		solo, err := ADPCMDecodeBlock(blk.Data, blk.Frames, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range solo.Samples {
			if s != full.Samples[off+i] {
				t.Fatalf("independent decode diverges at sample %d", off+i)
			}
		}
		off += len(solo.Samples)
	}
}

func TestADPCMDecodeErrors(t *testing.T) {
	if _, err := ADPCMDecodeBlock([]byte{1, 2}, 10, 2); err == nil {
		t.Error("short header must fail")
	}
	if _, err := ADPCMDecodeBlock([]byte{0, 0, 99, 0, 0, 99}, 10, 2); err == nil {
		t.Error("bad step index must fail")
	}
	if _, err := ADPCMDecodeBlock([]byte{0, 0, 0, 0, 0, 0, 1}, 100, 2); err == nil {
		t.Error("short body must fail")
	}
	if _, err := ADPCMEncode(audio.NewBuffer(10, 1), 0); err == nil {
		t.Error("zero block size must fail")
	}
}

func TestADPCMLastPartialBlock(t *testing.T) {
	b := audio.Sine(1000, 1, 440, 44100, 0.5)
	blocks, err := ADPCMEncode(b, 441)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 || blocks[2].Frames != 118 {
		t.Fatalf("blocks = %d, last frames = %d", len(blocks), blocks[len(blocks)-1].Frames)
	}
	got, err := ADPCMDecode(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frames() != 1000 {
		t.Errorf("decoded frames = %d", got.Frames())
	}
}

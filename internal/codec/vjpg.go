package codec

import (
	"encoding/binary"
	"fmt"

	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

// vjpg: the intraframe codec. Pipeline (per the paper's Figure 2
// recipe): RGB → YUV 8:2:2 → per-plane quantization → horizontal
// prediction → RLE/varint entropy coding. Every frame decodes
// independently, which is why vjpg streams support frame reordering
// and reverse play cheaply — the property the paper attributes to
// JPEG-compressed video.
//
// Bitstream: "VJ" | u8 quantizer | u16 width | u16 height |
// entropy-coded Y plane | U plane | V plane.

const vjpgMagic = "VJ"

// VJPGEncode compresses an RGB frame at the given quantizer (see
// QuantizerFor to derive one from a quality factor).
func VJPGEncode(f *frame.Frame, quantizer int) ([]byte, error) {
	if quantizer < 1 || quantizer > 128 {
		return nil, fmt.Errorf("%w: quantizer %d", ErrBadQuality, quantizer)
	}
	yuv, err := RGBToYUV422(f)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(yuv.Pix)/4)
	out = append(out, vjpgMagic...)
	out = append(out, byte(quantizer))
	out = binary.BigEndian.AppendUint16(out, uint16(f.Width))
	out = binary.BigEndian.AppendUint16(out, uint16(f.Height))
	for pi, p := range yuvPlanes(yuv) {
		out = encodePlane(out, p.pix, p.w, planeQuantizer(quantizer, pi))
	}
	return out, nil
}

// planeQuantizer coarsens chrominance quantization relative to luma —
// the paper's Figure 2 recipe gives chroma a fraction of the bits the
// luma plane gets.
func planeQuantizer(q, plane int) int {
	if plane == 0 {
		return q
	}
	cq := q * 2
	if cq > 128 {
		cq = 128
	}
	return cq
}

// VJPGDecode decompresses a vjpg frame back to RGB.
func VJPGDecode(data []byte) (*frame.Frame, error) {
	yuv, err := VJPGDecodeYUV(data)
	if err != nil {
		return nil, err
	}
	return YUV422ToRGB(yuv)
}

// VJPGDecodeYUV decompresses a vjpg frame to the internal planar
// YUV 8:2:2 representation, skipping the RGB conversion. Interframe
// coding (vmpg) predicts in this domain.
func VJPGDecodeYUV(data []byte) (*frame.Frame, error) {
	q, w, h, body, err := vjpgHeader(data)
	if err != nil {
		return nil, err
	}
	yuv := frame.New(w, h, media.ColorYUV422)
	off := 0
	for pi, p := range yuvPlanes(yuv) {
		n, err := decodePlane(body[off:], p.pix, p.w, planeQuantizer(q, pi))
		if err != nil {
			return nil, err
		}
		off += n
	}
	return yuv, nil
}

// VJPGDims returns the dimensions recorded in a vjpg bitstream without
// decoding it.
func VJPGDims(data []byte) (w, h int, err error) {
	_, w, h, _, err = vjpgHeader(data)
	return w, h, err
}

func vjpgHeader(data []byte) (q, w, h int, body []byte, err error) {
	if len(data) < 7 || string(data[:2]) != vjpgMagic {
		return 0, 0, 0, nil, fmt.Errorf("%w: vjpg header", ErrCorrupt)
	}
	q = int(data[2])
	w = int(binary.BigEndian.Uint16(data[3:]))
	h = int(binary.BigEndian.Uint16(data[5:]))
	if q < 1 || q > 128 || w == 0 || h == 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: vjpg header fields", ErrCorrupt)
	}
	return q, w, h, data[7:], nil
}

type plane struct {
	pix []byte
	w   int
}

// yuvPlanes exposes the three planes of a planar YUV422 frame.
func yuvPlanes(f *frame.Frame) [3]plane {
	w, h := f.Width, f.Height
	cw := (w + 1) / 2
	return [3]plane{
		{pix: f.Pix[:w*h], w: w},
		{pix: f.Pix[w*h : w*h+cw*h], w: cw},
		{pix: f.Pix[w*h+cw*h:], w: cw},
	}
}

// encodePlane compresses a byte plane with in-loop 2-D DPCM: each
// pixel is predicted from the average of the *reconstructed* left and
// above neighbors and the residual is quantized with a dead zone
// (truncation toward zero). Keeping the quantizer inside the
// prediction loop avoids limit-cycle flicker at quantization
// boundaries; the 2-D predictor locks onto gradients in either
// direction, which is where smooth synthetic and natural content
// spends most of its pixels.
func encodePlane(dst []byte, pix []byte, width, q int) []byte {
	vals := make([]int32, len(pix))
	recon := make([]byte, len(pix))
	for i, v := range pix {
		pred := predict2D(recon, i, width)
		r := int(v) - pred
		rq := roundDiv(r, q)
		vals[i] = int32(rq)
		recon[i] = byte(reconStep(pred, rq, q))
	}
	return entropyEncode(dst, vals)
}

// roundDiv quantizes with a mild dead zone (rounding offset q/3
// instead of q/2, as hardware video quantizers do): small residuals —
// tracking noise on gradients — quantize to zero more often, while the
// reconstruction error stays bounded by 2q/3.
func roundDiv(r, q int) int {
	if r >= 0 {
		return (r + q/3) / q
	}
	return -((-r + q/3) / q)
}

// decodePlane reverses encodePlane, filling pix and returning the
// number of bytes consumed.
func decodePlane(src []byte, pix []byte, width, q int) (int, error) {
	vals, n, err := entropyDecode(src, len(pix))
	if err != nil {
		return 0, err
	}
	for i, d := range vals {
		pred := predict2D(pix, i, width)
		pix[i] = byte(reconStep(pred, int(d), q))
	}
	return n, nil
}

// predict2D averages the reconstructed left and above neighbors (128
// where missing).
func predict2D(recon []byte, i, width int) int {
	left, above := -1, -1
	if i%width != 0 {
		left = int(recon[i-1])
	}
	if i >= width {
		above = int(recon[i-width])
	}
	switch {
	case left >= 0 && above >= 0:
		return (left + above + 1) / 2
	case left >= 0:
		return left
	case above >= 0:
		return above
	default:
		return 128
	}
}

// reconStep applies a dequantized residual to the prediction, clamping
// to byte range. With the rounding quantizer the reconstruction error
// is bounded by q/2.
func reconStep(pred, rq, q int) int {
	v := pred + rq*q
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Layered (scalable) vjpg — the paper's scalability item: "a digital
// video sequence recorded at very high resolution may be presented in
// an environment requiring, or only capable of, much lower resolution
// ... bandwidth can be saved and processing reduced if the video
// sequence is 'scaled' to a lower resolution by ignoring parts of the
// storage unit."
//
// VJPGEncodeLayered produces a base layer (half-resolution vjpg) and
// an enhancement layer (full-resolution residual against the upsampled
// base). Reading only the base layer yields a usable low-fidelity
// frame at a fraction of the bytes.

// VJPGEncodeLayered compresses f into base and enhancement layers.
func VJPGEncodeLayered(f *frame.Frame, quantizer int) (base, enh []byte, err error) {
	if f.Model != media.ColorRGB {
		return nil, nil, fmt.Errorf("%w: layered vjpg requires RGB", ErrBadGeometry)
	}
	half := downsample2(f)
	base, err = VJPGEncode(half, quantizer)
	if err != nil {
		return nil, nil, err
	}
	baseRec, err := VJPGDecode(base)
	if err != nil {
		return nil, nil, err
	}
	up := upsample2(baseRec, f.Width, f.Height)
	// Enhancement: residual of f against up, coded like a plane.
	vals := make([]int32, len(f.Pix))
	for i := range f.Pix {
		vals[i] = int32(int(f.Pix[i]) - int(up.Pix[i]))
	}
	qvals := make([]int32, len(vals))
	for i, v := range vals {
		qvals[i] = quantInt32(v, int32(quantizer))
	}
	enh = make([]byte, 0, len(f.Pix)/8)
	enh = append(enh, 'V', 'E', byte(quantizer))
	enh = binary.BigEndian.AppendUint16(enh, uint16(f.Width))
	enh = binary.BigEndian.AppendUint16(enh, uint16(f.Height))
	enh = entropyEncode(enh, qvals)
	return base, enh, nil
}

// VJPGDecodeBase decodes only the base layer, returning the
// half-resolution frame.
func VJPGDecodeBase(base []byte) (*frame.Frame, error) { return VJPGDecode(base) }

// VJPGDecodeLayered decodes base + enhancement into the full
// resolution frame.
func VJPGDecodeLayered(base, enh []byte) (*frame.Frame, error) {
	baseRec, err := VJPGDecode(base)
	if err != nil {
		return nil, err
	}
	if len(enh) < 7 || enh[0] != 'V' || enh[1] != 'E' {
		return nil, fmt.Errorf("%w: enhancement header", ErrCorrupt)
	}
	q := int32(enh[2])
	w := int(binary.BigEndian.Uint16(enh[3:]))
	h := int(binary.BigEndian.Uint16(enh[5:]))
	if q < 1 || w == 0 || h == 0 {
		return nil, fmt.Errorf("%w: enhancement header fields", ErrCorrupt)
	}
	up := upsample2(baseRec, w, h)
	vals, _, err := entropyDecode(enh[7:], len(up.Pix))
	if err != nil {
		return nil, err
	}
	for i, d := range vals {
		up.Pix[i] = clamp8(int(up.Pix[i]) + int(d*q))
	}
	return up, nil
}

func quantInt32(v, q int32) int32 {
	if v >= 0 {
		return (v + q/2) / q
	}
	return -((-v + q/2) / q)
}

// downsample2 halves both dimensions by 2x2 box averaging.
func downsample2(f *frame.Frame) *frame.Frame {
	w2, h2 := (f.Width+1)/2, (f.Height+1)/2
	out := frame.New(w2, h2, media.ColorRGB)
	for y := 0; y < h2; y++ {
		for x := 0; x < w2; x++ {
			var rs, gs, bs, n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx >= f.Width || sy >= f.Height {
						continue
					}
					r, g, b := f.RGB(sx, sy)
					rs += int(r)
					gs += int(g)
					bs += int(b)
					n++
				}
			}
			out.SetRGB(x, y, byte(rs/n), byte(gs/n), byte(bs/n))
		}
	}
	return out
}

// upsample2 scales a frame to the given dimensions by pixel doubling.
func upsample2(f *frame.Frame, w, h int) *frame.Frame {
	out := frame.New(w, h, media.ColorRGB)
	for y := 0; y < h; y++ {
		sy := y / 2
		if sy >= f.Height {
			sy = f.Height - 1
		}
		for x := 0; x < w; x++ {
			sx := x / 2
			if sx >= f.Width {
				sx = f.Width - 1
			}
			r, g, b := f.RGB(sx, sy)
			out.SetRGB(x, y, r, g, b)
		}
	}
	return out
}

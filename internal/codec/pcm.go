package codec

import (
	"encoding/binary"

	"timedmedia/internal/audio"
)

// PCM is the paper's "simple encoding scheme for sample data":
// lossless packing of int16 samples. Little-endian 16-bit and
// offset-binary 8-bit variants are supported.

// PCMEncode16 packs interleaved int16 samples little-endian.
func PCMEncode16(b *audio.Buffer) []byte {
	out := make([]byte, len(b.Samples)*2)
	for i, s := range b.Samples {
		binary.LittleEndian.PutUint16(out[i*2:], uint16(s))
	}
	return out
}

// PCMDecode16 unpacks little-endian 16-bit samples.
func PCMDecode16(data []byte, channels int) (*audio.Buffer, error) {
	if len(data)%2 != 0 || channels <= 0 || (len(data)/2)%channels != 0 {
		return nil, ErrCorrupt
	}
	b := &audio.Buffer{Channels: channels, Samples: make([]int16, len(data)/2)}
	for i := range b.Samples {
		b.Samples[i] = int16(binary.LittleEndian.Uint16(data[i*2:]))
	}
	return b, nil
}

// PCMEncode8 packs samples as unsigned 8-bit (offset binary), a lossy
// 2:1 reduction used by the telephone/AM quality factors.
func PCMEncode8(b *audio.Buffer) []byte {
	out := make([]byte, len(b.Samples))
	for i, s := range b.Samples {
		out[i] = byte((int(s) >> 8) + 128)
	}
	return out
}

// PCMDecode8 unpacks unsigned 8-bit samples to int16.
func PCMDecode8(data []byte, channels int) (*audio.Buffer, error) {
	if channels <= 0 || len(data)%channels != 0 {
		return nil, ErrCorrupt
	}
	b := &audio.Buffer{Channels: channels, Samples: make([]int16, len(data))}
	for i, v := range data {
		b.Samples[i] = int16(int(v)-128) << 8
	}
	return b, nil
}

package codec

import (
	"testing"
	"testing/quick"
)

func TestZigzagRoundTripProperty(t *testing.T) {
	f := func(v int32) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigzagSmallMagnitudes(t *testing.T) {
	cases := map[int32]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, want := range cases {
		if got := zigzag(v); got != want {
			t.Errorf("zigzag(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestEntropyRoundTrip(t *testing.T) {
	vals := []int32{0, 0, 0, 5, -3, 0, 0, 0, 0, 0, 127, -128, 1, 0}
	enc := entropyEncode(nil, vals)
	dec, n, err := entropyDecode(enc, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Errorf("val %d = %d, want %d", i, dec[i], vals[i])
		}
	}
}

func TestEntropyRoundTripProperty(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]int32, len(raw))
		for i, v := range raw {
			vals[i] = int32(v) / 64 // bias toward zeros and small values
		}
		enc := entropyEncode(nil, vals)
		dec, _, err := entropyDecode(enc, len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntropyZeroRunsCompress(t *testing.T) {
	vals := make([]int32, 10000) // all zero
	enc := entropyEncode(nil, vals)
	if len(enc) > 4 {
		t.Errorf("10000 zeros encoded to %d bytes", len(enc))
	}
}

func TestEntropyDecodeCorrupt(t *testing.T) {
	// Truncated stream.
	if _, _, err := entropyDecode([]byte{}, 5); err != ErrCorrupt {
		t.Errorf("empty: %v", err)
	}
	// A zero-run longer than requested n.
	bad := entropyEncode(nil, make([]int32, 10))
	if _, _, err := entropyDecode(bad, 5); err != ErrCorrupt {
		t.Errorf("overlong run: %v", err)
	}
	// Zero-run with zero length marker.
	if _, _, err := entropyDecode([]byte{0, 0}, 1); err != ErrCorrupt {
		t.Errorf("zero run length: %v", err)
	}
}

package codec

import (
	"encoding/binary"
	"fmt"

	"timedmedia/internal/audio"
)

// IMA-style ADPCM: 4 bits per sample (4:1 vs 16-bit PCM), block-based.
// Each block starts with a per-channel header carrying the predictor
// and step index — "a set of encoding parameters that vary over an
// audio sequence. These parameters would be part of element
// descriptors" (Section 3.3). One block is one stream element.

// adpcm step size table (IMA standard).
var stepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

var indexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

type adpcmState struct {
	predictor int
	index     int
}

func (s *adpcmState) encodeSample(v int16) byte {
	step := stepTable[s.index]
	diff := int(v) - s.predictor
	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	if diff >= step {
		code |= 4
		diff -= step
	}
	if diff >= step/2 {
		code |= 2
		diff -= step / 2
	}
	if diff >= step/4 {
		code |= 1
	}
	s.decodeStep(code)
	return code
}

// decodeStep applies code to the state and returns the reconstructed
// sample.
func (s *adpcmState) decodeStep(code byte) int16 {
	step := stepTable[s.index]
	diff := step >> 3
	if code&4 != 0 {
		diff += step
	}
	if code&2 != 0 {
		diff += step >> 1
	}
	if code&1 != 0 {
		diff += step >> 2
	}
	if code&8 != 0 {
		s.predictor -= diff
	} else {
		s.predictor += diff
	}
	if s.predictor > 32767 {
		s.predictor = 32767
	}
	if s.predictor < -32768 {
		s.predictor = -32768
	}
	s.index += indexTable[code]
	if s.index < 0 {
		s.index = 0
	}
	if s.index > 88 {
		s.index = 88
	}
	return int16(s.predictor)
}

// ADPCMBlockParams is the per-block varying state: the contents of an
// element descriptor for ADPCM streams (one entry per channel).
type ADPCMBlockParams struct {
	Predictor []int16
	StepIndex []uint8
}

// ADPCMEncodeBlock encodes frames [0, framesPerBlock) of b into one
// block. The states carry across blocks (one per channel); the block
// header records their entry values so blocks decode independently.
//
// Block layout: per channel {i16 predictor, u8 index}, then 4-bit
// codes channel-interleaved, two per byte, zero-padded.
func ADPCMEncodeBlock(b *audio.Buffer, states []*adpcmState) ([]byte, ADPCMBlockParams) {
	ch := b.Channels
	params := ADPCMBlockParams{Predictor: make([]int16, ch), StepIndex: make([]uint8, ch)}
	head := make([]byte, 0, ch*3)
	for c := 0; c < ch; c++ {
		params.Predictor[c] = int16(states[c].predictor)
		params.StepIndex[c] = uint8(states[c].index)
		head = binary.LittleEndian.AppendUint16(head, uint16(states[c].predictor))
		head = append(head, uint8(states[c].index))
	}
	codes := make([]byte, 0, (len(b.Samples)+1)/2)
	var nibble byte
	half := false
	for i, s := range b.Samples {
		code := states[i%ch].encodeSample(s)
		_ = code
		if !half {
			nibble = code
			half = true
		} else {
			codes = append(codes, nibble|code<<4)
			half = false
		}
	}
	if half {
		codes = append(codes, nibble)
	}
	return append(head, codes...), params
}

// ADPCMDecodeBlock decodes one block of the given frame count and
// channel layout.
func ADPCMDecodeBlock(data []byte, frames, channels int) (*audio.Buffer, error) {
	headLen := channels * 3
	if len(data) < headLen {
		return nil, fmt.Errorf("%w: adpcm block header", ErrCorrupt)
	}
	states := make([]*adpcmState, channels)
	for c := 0; c < channels; c++ {
		states[c] = &adpcmState{
			predictor: int(int16(binary.LittleEndian.Uint16(data[c*3:]))),
			index:     int(data[c*3+2]),
		}
		if states[c].index > 88 {
			return nil, fmt.Errorf("%w: adpcm step index %d", ErrCorrupt, states[c].index)
		}
	}
	n := frames * channels
	if len(data)-headLen < (n+1)/2 {
		return nil, fmt.Errorf("%w: adpcm block body", ErrCorrupt)
	}
	out := &audio.Buffer{Channels: channels, Samples: make([]int16, n)}
	body := data[headLen:]
	for i := 0; i < n; i++ {
		var code byte
		if i%2 == 0 {
			code = body[i/2] & 0x0F
		} else {
			code = body[i/2] >> 4
		}
		out.Samples[i] = states[i%channels].decodeStep(code)
	}
	return out, nil
}

// ADPCMEncoder encodes an audio buffer into a sequence of blocks,
// returning one encoded element per block together with its varying
// parameters (the element descriptor content).
type ADPCMBlock struct {
	Data   []byte
	Params ADPCMBlockParams
	Frames int
}

// ADPCMEncode splits b into blocks of framesPerBlock frames (the last
// block may be shorter) and encodes each.
func ADPCMEncode(b *audio.Buffer, framesPerBlock int) ([]ADPCMBlock, error) {
	if framesPerBlock <= 0 {
		return nil, fmt.Errorf("codec: framesPerBlock must be positive")
	}
	states := make([]*adpcmState, b.Channels)
	for c := range states {
		states[c] = &adpcmState{}
	}
	var blocks []ADPCMBlock
	total := b.Frames()
	for off := 0; off < total; off += framesPerBlock {
		end := off + framesPerBlock
		if end > total {
			end = total
		}
		sub := b.Slice(off, end)
		data, params := ADPCMEncodeBlock(sub, states)
		blocks = append(blocks, ADPCMBlock{Data: data, Params: params, Frames: end - off})
	}
	return blocks, nil
}

// ADPCMDecode reassembles a full buffer from blocks.
func ADPCMDecode(blocks []ADPCMBlock, channels int) (*audio.Buffer, error) {
	out := &audio.Buffer{Channels: channels}
	for _, blk := range blocks {
		buf, err := ADPCMDecodeBlock(blk.Data, blk.Frames, channels)
		if err != nil {
			return nil, err
		}
		out.Samples = append(out.Samples, buf.Samples...)
	}
	return out, nil
}

package codec

import (
	"testing"

	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

func TestYUVRoundTripQuality(t *testing.T) {
	f := frame.Generator{W: 64, H: 48, Seed: 3}.Frame(0)
	yuv, err := RGBToYUV422(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := YUV422ToRGB(yuv)
	if err != nil {
		t.Fatal(err)
	}
	p, err := frame.PSNR(f, back)
	if err != nil {
		t.Fatal(err)
	}
	// Chroma subsampling is lossy but mild: expect > 25 dB on
	// gradient-plus-box content.
	if p < 25 {
		t.Errorf("YUV round trip PSNR = %v dB", p)
	}
}

func TestYUVGrayIsNeutral(t *testing.T) {
	f := frame.Flat(16, 16, 128, 128, 128)
	yuv, _ := RGBToYUV422(f)
	w, h := 16, 16
	cw := (w + 1) / 2
	// Chroma of gray must be ~128 (neutral).
	u := yuv.Pix[w*h]
	v := yuv.Pix[w*h+cw*h]
	if int(u) < 126 || int(u) > 130 || int(v) < 126 || int(v) > 130 {
		t.Errorf("gray chroma = %d,%d", u, v)
	}
}

func TestYUVRequiresRGB(t *testing.T) {
	yuv := frame.New(8, 8, media.ColorYUV422)
	if _, err := RGBToYUV422(yuv); err == nil {
		t.Error("YUV input must be rejected")
	}
	rgb := frame.New(8, 8, media.ColorRGB)
	if _, err := YUV422ToRGB(rgb); err == nil {
		t.Error("RGB input must be rejected")
	}
}

func TestYUVOddWidth(t *testing.T) {
	f := frame.Flat(7, 5, 40, 80, 120)
	yuv, err := RGBToYUV422(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := YUV422ToRGB(yuv); err != nil {
		t.Fatal(err)
	}
}

func TestCMYKSeparationPrimaries(t *testing.T) {
	// Pure black separates to K plate with full UCR.
	f := frame.Flat(4, 4, 0, 0, 0)
	sep, err := RGBToCMYK(f, DefaultSeparation())
	if err != nil {
		t.Fatal(err)
	}
	if sep.Pix[3] != 255 {
		t.Errorf("black K = %d", sep.Pix[3])
	}
	if sep.Pix[0] != 0 || sep.Pix[1] != 0 || sep.Pix[2] != 0 {
		t.Errorf("black CMY = %d,%d,%d", sep.Pix[0], sep.Pix[1], sep.Pix[2])
	}
	// Pure red: C=0, M=Y=1, K=0.
	f = frame.Flat(4, 4, 255, 0, 0)
	sep, _ = RGBToCMYK(f, DefaultSeparation())
	if sep.Pix[0] != 0 || sep.Pix[1] != 255 || sep.Pix[2] != 255 || sep.Pix[3] != 0 {
		t.Errorf("red CMYK = %v", sep.Pix[:4])
	}
}

func TestCMYKRoundTrip(t *testing.T) {
	f := frame.Generator{W: 32, H: 24, Seed: 5}.Frame(0)
	sep, err := RGBToCMYK(f, DefaultSeparation())
	if err != nil {
		t.Fatal(err)
	}
	back, err := CMYKToRGB(sep)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := frame.PSNR(f, back)
	if p < 30 {
		t.Errorf("CMYK round trip PSNR = %v", p)
	}
}

func TestSeparationTableUCRChangesK(t *testing.T) {
	// Different separation parameters must produce different plates —
	// the paper's point that the mapping "is not unique".
	f := frame.Flat(4, 4, 100, 100, 100)
	full, _ := RGBToCMYK(f, SeparationTable{UCR: 1.0, InkLimit: 4})
	none, _ := RGBToCMYK(f, SeparationTable{UCR: 0.0, InkLimit: 4})
	if full.Pix[3] == none.Pix[3] {
		t.Error("UCR had no effect on the K plate")
	}
	if none.Pix[3] != 0 {
		t.Errorf("UCR=0 K = %d, want 0", none.Pix[3])
	}
}

func TestSeparationInkLimit(t *testing.T) {
	f := frame.Flat(4, 4, 10, 10, 200)
	lim, err := RGBToCMYK(f, SeparationTable{UCR: 0, InkLimit: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	total := int(lim.Pix[0]) + int(lim.Pix[1]) + int(lim.Pix[2]) + int(lim.Pix[3])
	if total > 256 {
		t.Errorf("ink total = %d exceeds limit", total)
	}
}

func TestSeparationRejectsBadTable(t *testing.T) {
	f := frame.Flat(2, 2, 0, 0, 0)
	if _, err := RGBToCMYK(f, SeparationTable{UCR: 2, InkLimit: 4}); err == nil {
		t.Error("UCR 2 must be rejected")
	}
	if _, err := RGBToCMYK(f, SeparationTable{UCR: 0.5, InkLimit: 0}); err == nil {
		t.Error("ink limit 0 must be rejected")
	}
}

func TestCMYKRequiresModels(t *testing.T) {
	if _, err := RGBToCMYK(frame.New(2, 2, media.ColorGray), DefaultSeparation()); err == nil {
		t.Error("gray input must be rejected")
	}
	if _, err := CMYKToRGB(frame.New(2, 2, media.ColorRGB)); err == nil {
		t.Error("rgb input must be rejected")
	}
}

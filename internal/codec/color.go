package codec

import (
	"fmt"

	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

// RGBToYUV422 converts an RGB frame to planar YUV with 8:2:2 chroma
// subsampling, the transformation of the paper's Figure 2 example
// ("The RGB values are then converted to YUV, Y is given 8 bits per
// pixel, U and V are subsampled ... There are now 12 bits per pixel";
// our planar variant stores full-height half-width chroma, 16 bpp,
// and the subsequent vjpg quantization provides the rate reduction).
func RGBToYUV422(f *frame.Frame) (*frame.Frame, error) {
	if f.Model != media.ColorRGB {
		return nil, fmt.Errorf("%w: RGBToYUV422 requires RGB input, got %v", ErrBadGeometry, f.Model)
	}
	w, h := f.Width, f.Height
	out := frame.New(w, h, media.ColorYUV422)
	cw := (w + 1) / 2
	yPlane := out.Pix[:w*h]
	uPlane := out.Pix[w*h : w*h+cw*h]
	vPlane := out.Pix[w*h+cw*h:]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := f.RGB(x, y)
			// BT.601-style integer transform.
			yy := (66*int(r) + 129*int(g) + 25*int(b) + 128) >> 8
			yPlane[y*w+x] = clamp8(yy + 16)
		}
		for cx := 0; cx < cw; cx++ {
			x0 := cx * 2
			x1 := x0 + 1
			if x1 >= w {
				x1 = x0
			}
			r0, g0, b0 := f.RGB(x0, y)
			r1, g1, b1 := f.RGB(x1, y)
			r, g, b := (int(r0)+int(r1))/2, (int(g0)+int(g1))/2, (int(b0)+int(b1))/2
			u := (-38*r - 74*g + 112*b + 128) >> 8
			v := (112*r - 94*g - 18*b + 128) >> 8
			uPlane[y*cw+cx] = clamp8(u + 128)
			vPlane[y*cw+cx] = clamp8(v + 128)
		}
	}
	return out, nil
}

// YUV422ToRGB inverts RGBToYUV422 (up to subsampling loss).
func YUV422ToRGB(f *frame.Frame) (*frame.Frame, error) {
	if f.Model != media.ColorYUV422 {
		return nil, fmt.Errorf("%w: YUV422ToRGB requires YUV input, got %v", ErrBadGeometry, f.Model)
	}
	w, h := f.Width, f.Height
	cw := (w + 1) / 2
	yPlane := f.Pix[:w*h]
	uPlane := f.Pix[w*h : w*h+cw*h]
	vPlane := f.Pix[w*h+cw*h:]
	out := frame.New(w, h, media.ColorRGB)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			yy := int(yPlane[y*w+x]) - 16
			u := int(uPlane[y*cw+x/2]) - 128
			v := int(vPlane[y*cw+x/2]) - 128
			r := (298*yy + 409*v + 128) >> 8
			g := (298*yy - 100*u - 208*v + 128) >> 8
			b := (298*yy + 516*u + 128) >> 8
			out.SetRGB(x, y, clamp8(r), clamp8(g), clamp8(b))
		}
	}
	return out, nil
}

// SeparationTable parameterizes RGB→CMYK color separation — the
// paper's Table 1 derivation whose mapping "is not unique, additional
// information must be provided as parameters ... defined in separation
// tables which account for physical characteristics of inks and
// papers".
type SeparationTable struct {
	// UCR is the under-color-removal fraction (0..1): how much of the
	// common gray component moves into the black plate.
	UCR float64
	// InkLimit caps total ink coverage per pixel, 0..4 in plate units
	// (4 = no limit).
	InkLimit float64
}

// DefaultSeparation is a neutral table: full UCR, no ink limit.
func DefaultSeparation() SeparationTable { return SeparationTable{UCR: 1.0, InkLimit: 4.0} }

// RGBToCMYK separates an RGB frame into a 4-component CMYK frame
// according to the table.
func RGBToCMYK(f *frame.Frame, table SeparationTable) (*frame.Frame, error) {
	if f.Model != media.ColorRGB {
		return nil, fmt.Errorf("%w: RGBToCMYK requires RGB input, got %v", ErrBadGeometry, f.Model)
	}
	if table.UCR < 0 || table.UCR > 1 || table.InkLimit <= 0 {
		return nil, fmt.Errorf("codec: invalid separation table %+v", table)
	}
	w, h := f.Width, f.Height
	out := frame.New(w, h, media.ColorCMYK)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := f.RGB(x, y)
			c := 1 - float64(r)/255
			m := 1 - float64(g)/255
			yl := 1 - float64(b)/255
			k := min3(c, m, yl) * table.UCR
			if k < 1 {
				c = (c - k) / (1 - k)
				m = (m - k) / (1 - k)
				yl = (yl - k) / (1 - k)
			} else {
				c, m, yl = 0, 0, 0
			}
			// Apply ink limit by proportional scaling.
			total := c + m + yl + k
			if total > table.InkLimit {
				scale := table.InkLimit / total
				c, m, yl, k = c*scale, m*scale, yl*scale, k*scale
			}
			i := (y*w + x) * 4
			out.Pix[i] = byte(c*255 + 0.5)
			out.Pix[i+1] = byte(m*255 + 0.5)
			out.Pix[i+2] = byte(yl*255 + 0.5)
			out.Pix[i+3] = byte(k*255 + 0.5)
		}
	}
	return out, nil
}

// CMYKToRGB approximately inverts RGBToCMYK (for display/tests).
func CMYKToRGB(f *frame.Frame) (*frame.Frame, error) {
	if f.Model != media.ColorCMYK {
		return nil, fmt.Errorf("%w: CMYKToRGB requires CMYK input, got %v", ErrBadGeometry, f.Model)
	}
	w, h := f.Width, f.Height
	out := frame.New(w, h, media.ColorRGB)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 4
			c := float64(f.Pix[i]) / 255
			m := float64(f.Pix[i+1]) / 255
			yl := float64(f.Pix[i+2]) / 255
			k := float64(f.Pix[i+3]) / 255
			r := 255 * (1 - c) * (1 - k)
			g := 255 * (1 - m) * (1 - k)
			b := 255 * (1 - yl) * (1 - k)
			out.SetRGB(x, y, byte(r+0.5), byte(g+0.5), byte(b+0.5))
		}
	}
	return out, nil
}

func clamp8(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

package codec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

// vmpg: the interframe codec. Key frames ("I") are coded intra (like
// vjpg); intermediate frames ("B") are coded as quantized residuals
// against the temporal interpolation of the two reconstructed keys
// that bracket them.
//
// Crucially for the data model, packets are emitted in *decode order*,
// not presentation order: both bracketing keys precede their
// intermediates, reproducing the paper's out-of-order placement
// example — "with a sequence of four elements where the first and
// last are 'keys,' the placement order could be 1,4,2,3."

// VMPGPacket is one encoded element.
type VMPGPacket struct {
	// Data is the encoded bitstream for this frame.
	Data []byte
	// Index is the frame's presentation index (0-based).
	Index int
	// Key marks intraframe-coded key elements.
	Key bool
}

// Desc returns the element descriptor the data model stores for this
// packet — vmpg streams are heterogeneous.
func (p VMPGPacket) Desc() media.ElementDescriptor {
	return media.ElementDescriptor{Key: p.Key}
}

// VMPGEncode compresses frames with keys every gop frames (and at the
// final frame). gop must be >= 1; gop = 1 degenerates to all-key.
func VMPGEncode(frames []*frame.Frame, quantizer, gop int) ([]VMPGPacket, error) {
	if gop < 1 {
		return nil, fmt.Errorf("codec: gop must be >= 1, got %d", gop)
	}
	if len(frames) == 0 {
		return nil, nil
	}
	for i, f := range frames {
		if f.Model != media.ColorRGB || f.Width != frames[0].Width || f.Height != frames[0].Height {
			return nil, fmt.Errorf("%w: frame %d", ErrBadGeometry, i)
		}
	}
	n := len(frames)
	keySet := map[int]bool{0: true, n - 1: true}
	for i := gop; i < n-1; i += gop {
		keySet[i] = true
	}
	keys := make([]int, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	// Encode keys and keep their reconstructions in the YUV domain,
	// where intermediates are predicted.
	keyData := make(map[int][]byte, len(keys))
	keyRecon := make(map[int]*frame.Frame, len(keys))
	for _, k := range keys {
		data, err := VJPGEncode(frames[k], quantizer)
		if err != nil {
			return nil, err
		}
		rec, err := VJPGDecodeYUV(data)
		if err != nil {
			return nil, err
		}
		keyData[k] = data
		keyRecon[k] = rec
	}

	var packets []VMPGPacket
	emitKey := func(k int) {
		packets = append(packets, VMPGPacket{Data: keyData[k], Index: k, Key: true})
	}
	if len(keys) == 1 {
		emitKey(keys[0])
		return packets, nil
	}
	for gi := 0; gi+1 < len(keys); gi++ {
		k0, k1 := keys[gi], keys[gi+1]
		if gi == 0 {
			emitKey(k0)
		}
		emitKey(k1)
		for i := k0 + 1; i < k1; i++ {
			data, err := encodeIntermediate(frames[i], keyRecon[k0], keyRecon[k1], i-k0, k1-k0, quantizer)
			if err != nil {
				return nil, err
			}
			packets = append(packets, VMPGPacket{Data: data, Index: i})
		}
	}
	return packets, nil
}

// intermediate bitstream: "VC" | u8 quantizer | u16 w | u16 h |
// entropy-coded per-block motion field | entropy-coded YUV-domain
// residual against the motion-compensated prediction.
//
// Prediction is per 16×16 block (within each YUV plane): the temporal
// interpolation of the bracketing keys, or a motion-shifted block from
// either key, whichever has the lowest absolute error — a scalar
// version of MPEG's bidirectional block motion compensation. The
// motion field is coded as one value per block: 0 for interpolation,
// 1+v for a key-A vector, 1+V+v for a key-B vector (V = vector count).
//
// Residuals are quantized with a dead zone (truncation toward zero):
// key reconstructions carry quantization noise up to ±q/2, and a
// dead-zone quantizer sends that noise to zero instead of spending a
// token on every pixel.

const (
	mcBlock = 16 // block side in plane pixels
	mcRange = 4  // motion search range in pixels
	mcStep  = 2  // search step
)

func encodeIntermediate(f, recA, recB *frame.Frame, offset, span, quantizer int) ([]byte, error) {
	yuv, err := RGBToYUV422(f)
	if err != nil {
		return nil, err
	}
	interp := interpolate(recA, recB, offset, span)
	pred := frame.New(f.Width, f.Height, media.ColorYUV422)
	var motion []int32
	for pi, p := range yuvPlanes(yuv) {
		ip := yuvPlanes(interp)[pi]
		ap := yuvPlanes(recA)[pi]
		bp := yuvPlanes(recB)[pi]
		op := yuvPlanes(pred)[pi]
		motion = append(motion, predictPlane(p, ip, ap, bp, op)...)
	}
	vals := make([]int32, len(yuv.Pix))
	q := int32(quantizer)
	for i := range yuv.Pix {
		vals[i] = int32(int(yuv.Pix[i])-int(pred.Pix[i])) / q // dead zone
	}
	out := make([]byte, 0, len(yuv.Pix)/16)
	out = append(out, 'V', 'C', byte(quantizer))
	out = binary.BigEndian.AppendUint16(out, uint16(f.Width))
	out = binary.BigEndian.AppendUint16(out, uint16(f.Height))
	out = entropyEncode(out, motion)
	return entropyEncode(out, vals), nil
}

// mvCount is the number of distinct vectors per reference.
const mvCount = (2*mcRange + 1) * (2*mcRange + 1)

// predictPlane fills dst with the chosen prediction per block and
// returns the motion field values.
func predictPlane(src, interp, keyA, keyB, dst plane) []int32 {
	h := len(src.pix) / src.w
	var field []int32
	for by := 0; by < h; by += mcBlock {
		for bx := 0; bx < src.w; bx += mcBlock {
			bestCode := int32(0)
			bestSAD := blockSAD(src, interp, bx, by, bx, by, h)
			for ref, key := range []plane{keyA, keyB} {
				for dy := -mcRange; dy <= mcRange; dy += mcStep {
					for dx := -mcRange; dx <= mcRange; dx += mcStep {
						sx, sy := bx+dx, by+dy
						if sx < 0 || sy < 0 || sx+mcBlock > src.w || sy+mcBlock > h {
							continue
						}
						// Require a real win to avoid spending motion
						// bits on noise.
						if sad := blockSAD(src, key, bx, by, sx, sy, h); sad+64 < bestSAD {
							bestSAD = sad
							bestCode = mvCode(ref, dx, dy)
						}
					}
				}
			}
			field = append(field, bestCode)
			copyBlock(dst, interp, keyA, keyB, bx, by, bestCode, h)
		}
	}
	return field
}

// mvCode packs a reference selector and motion vector into a nonzero
// int32.
func mvCode(ref, dx, dy int) int32 {
	return int32(1 + ref*mvCount + (dy+mcRange)*(2*mcRange+1) + (dx + mcRange))
}

// mvDecode unpacks a motion code into reference selector and vector.
func mvDecode(code int32) (ref, dx, dy int) {
	v := int(code - 1)
	ref = v / mvCount
	v %= mvCount
	return ref, v%(2*mcRange+1) - mcRange, v/(2*mcRange+1) - mcRange
}

// blockSAD sums absolute differences between the block at (bx,by) in a
// and the block at (sx,sy) in b, clipped to the plane.
func blockSAD(a, b plane, bx, by, sx, sy, h int) int {
	sad := 0
	for y := 0; y < mcBlock; y++ {
		ay, byy := by+y, sy+y
		if ay >= h || byy >= h {
			break
		}
		for x := 0; x < mcBlock; x++ {
			ax, bxx := bx+x, sx+x
			if ax >= a.w || bxx >= b.w {
				break
			}
			d := int(a.pix[ay*a.w+ax]) - int(b.pix[byy*b.w+bxx])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// copyBlock writes the selected prediction for one block into dst.
func copyBlock(dst, interp, keyA, keyB plane, bx, by int, code int32, h int) {
	dx, dy := 0, 0
	src := interp
	if code != 0 {
		var ref int
		ref, dx, dy = mvDecode(code)
		src = keyA
		if ref == 1 {
			src = keyB
		}
	}
	for y := 0; y < mcBlock; y++ {
		ty := by + y
		if ty >= h {
			break
		}
		sy := ty + dy
		for x := 0; x < mcBlock; x++ {
			tx := bx + x
			if tx >= dst.w {
				break
			}
			sx := tx + dx
			v := byte(128)
			if sx >= 0 && sy >= 0 && sx < src.w && sy*src.w+sx < len(src.pix) {
				v = src.pix[sy*src.w+sx]
			}
			dst.pix[ty*dst.w+tx] = v
		}
	}
}

// blocksInPlane counts motion-field entries for a plane.
func blocksInPlane(p plane) int {
	h := len(p.pix) / p.w
	return ((p.w + mcBlock - 1) / mcBlock) * ((h + mcBlock - 1) / mcBlock)
}

// decodeIntermediate reconstructs an intermediate frame in the YUV
// domain.
func decodeIntermediate(data []byte, recA, recB *frame.Frame, offset, span int) (*frame.Frame, error) {
	if len(data) < 7 || data[0] != 'V' || data[1] != 'C' {
		return nil, fmt.Errorf("%w: vmpg intermediate header", ErrCorrupt)
	}
	q := int32(data[2])
	w := int(binary.BigEndian.Uint16(data[3:]))
	h := int(binary.BigEndian.Uint16(data[5:]))
	if q < 1 || w != recA.Width || h != recA.Height {
		return nil, fmt.Errorf("%w: vmpg intermediate fields", ErrCorrupt)
	}
	interp := interpolate(recA, recB, offset, span)
	pred := frame.New(w, h, media.ColorYUV422)
	nBlocks := 0
	for _, p := range yuvPlanes(pred) {
		nBlocks += blocksInPlane(p)
	}
	motion, n, err := entropyDecode(data[7:], nBlocks)
	if err != nil {
		return nil, err
	}
	mi := 0
	for pi, p := range yuvPlanes(pred) {
		ip := yuvPlanes(interp)[pi]
		ap := yuvPlanes(recA)[pi]
		bp := yuvPlanes(recB)[pi]
		ph := len(p.pix) / p.w
		for by := 0; by < ph; by += mcBlock {
			for bx := 0; bx < p.w; bx += mcBlock {
				copyBlock(p, ip, ap, bp, bx, by, motion[mi], ph)
				mi++
			}
		}
	}
	vals, _, err := entropyDecode(data[7+n:], len(pred.Pix))
	if err != nil {
		return nil, err
	}
	for i, d := range vals {
		// Reconstruct at the center of the dead-zone bin.
		r := d * q
		switch {
		case d > 0:
			r += q / 2
		case d < 0:
			r -= q / 2
		}
		pred.Pix[i] = clamp8(int(pred.Pix[i]) + int(r))
	}
	return pred, nil
}

// interpolate blends recA and recB with weight offset/span.
func interpolate(recA, recB *frame.Frame, offset, span int) *frame.Frame {
	out := recA.Clone()
	wB := offset
	wA := span - offset
	for i := range out.Pix {
		out.Pix[i] = byte((int(recA.Pix[i])*wA + int(recB.Pix[i])*wB) / span)
	}
	return out
}

// VMPGDecode reconstructs all frames in presentation order from a
// packet list (in any order).
func VMPGDecode(packets []VMPGPacket) ([]*frame.Frame, error) {
	if len(packets) == 0 {
		return nil, nil
	}
	maxIdx := 0
	var keyIdx []int
	keyRecon := map[int]*frame.Frame{} // YUV-domain reconstructions
	for _, p := range packets {
		if p.Index > maxIdx {
			maxIdx = p.Index
		}
		if p.Key {
			rec, err := VJPGDecodeYUV(p.Data)
			if err != nil {
				return nil, err
			}
			keyRecon[p.Index] = rec
			keyIdx = append(keyIdx, p.Index)
		}
	}
	sort.Ints(keyIdx)
	if len(keyIdx) == 0 {
		return nil, fmt.Errorf("%w: no key frames", ErrCorrupt)
	}
	yuvOut := make([]*frame.Frame, maxIdx+1)
	for _, p := range packets {
		if p.Key {
			yuvOut[p.Index] = keyRecon[p.Index]
			continue
		}
		k0, k1, err := bracketingKeys(keyIdx, p.Index)
		if err != nil {
			return nil, err
		}
		f, err := decodeIntermediate(p.Data, keyRecon[k0], keyRecon[k1], p.Index-k0, k1-k0)
		if err != nil {
			return nil, err
		}
		yuvOut[p.Index] = f
	}
	out := make([]*frame.Frame, len(yuvOut))
	for i, f := range yuvOut {
		if f == nil {
			return nil, fmt.Errorf("%w: missing frame %d", ErrCorrupt, i)
		}
		rgb, err := YUV422ToRGB(f)
		if err != nil {
			return nil, err
		}
		out[i] = rgb
	}
	return out, nil
}

// VMPGDecodeFrame decodes the single frame with the given presentation
// index, touching only the packets it depends on (itself plus, for
// intermediates, the two bracketing keys). This is the structural
// asymmetry the paper notes: key elements are needed early, random
// access into interframe video costs more than into intraframe video.
func VMPGDecodeFrame(packets []VMPGPacket, index int) (*frame.Frame, error) {
	var target *VMPGPacket
	var keyIdx []int
	byIndex := map[int]*VMPGPacket{}
	for i := range packets {
		p := &packets[i]
		byIndex[p.Index] = p
		if p.Key {
			keyIdx = append(keyIdx, p.Index)
		}
		if p.Index == index {
			target = p
		}
	}
	if target == nil {
		return nil, fmt.Errorf("%w: frame %d not present", ErrCorrupt, index)
	}
	if target.Key {
		return VJPGDecode(target.Data)
	}
	sort.Ints(keyIdx)
	k0, k1, err := bracketingKeys(keyIdx, index)
	if err != nil {
		return nil, err
	}
	recA, err := VJPGDecodeYUV(byIndex[k0].Data)
	if err != nil {
		return nil, err
	}
	recB, err := VJPGDecodeYUV(byIndex[k1].Data)
	if err != nil {
		return nil, err
	}
	yuv, err := decodeIntermediate(target.Data, recA, recB, index-k0, k1-k0)
	if err != nil {
		return nil, err
	}
	return YUV422ToRGB(yuv)
}

func bracketingKeys(sortedKeys []int, index int) (k0, k1 int, err error) {
	pos := sort.SearchInts(sortedKeys, index)
	if pos == 0 || pos == len(sortedKeys) {
		return 0, 0, fmt.Errorf("%w: no bracketing keys for frame %d", ErrCorrupt, index)
	}
	return sortedKeys[pos-1], sortedKeys[pos], nil
}

// StorageOrder returns the presentation indices of packets in their
// storage order — e.g. [0,3,1,2] for four frames with gop 3, the
// paper's "1,4,2,3" in 0-based form.
func StorageOrder(packets []VMPGPacket) []int {
	out := make([]int, len(packets))
	for i, p := range packets {
		out[i] = p.Index
	}
	return out
}

package codec

import (
	"testing"
	"testing/quick"

	"timedmedia/internal/audio"
	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

func genFrames(n, w, h int, seed int64) []*frame.Frame {
	g := frame.Generator{W: w, H: h, Seed: seed}
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = g.Frame(i)
	}
	return out
}

func TestVJPGRoundTripQuality(t *testing.T) {
	f := frame.Generator{W: 64, H: 48, Seed: 7}.Frame(0)
	for _, q := range []media.Quality{media.QualityPreview, media.QualityVHS, media.QualityBroadcast} {
		data, err := VJPGEncode(f, QuantizerFor(q))
		if err != nil {
			t.Fatal(err)
		}
		got, err := VJPGDecode(data)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := frame.PSNR(f, got)
		if p < 20 {
			t.Errorf("%v: PSNR = %.1f dB", q, p)
		}
	}
}

func TestVJPGQualityMonotone(t *testing.T) {
	// Higher quality factor → larger encoding and higher PSNR: the
	// "quality factors" contract of Section 2.2.
	f := frame.Generator{W: 64, H: 48, Seed: 7}.Frame(0)
	var prevSize int
	var prevPSNR float64
	for _, q := range []media.Quality{media.QualityPreview, media.QualityVHS, media.QualityBroadcast, media.QualityStudio} {
		data, _ := VJPGEncode(f, QuantizerFor(q))
		rec, _ := VJPGDecode(data)
		p, _ := frame.PSNR(f, rec)
		if len(data) <= prevSize {
			t.Errorf("%v: size %d not larger than previous %d", q, len(data), prevSize)
		}
		if p <= prevPSNR {
			t.Errorf("%v: PSNR %.1f not higher than previous %.1f", q, p, prevPSNR)
		}
		prevSize, prevPSNR = len(data), p
	}
}

func TestVJPGCompresses(t *testing.T) {
	f := frame.Generator{W: 64, H: 48, Seed: 1}.Frame(0)
	raw := len(f.Pix)
	data, _ := VJPGEncode(f, QuantizerFor(media.QualityVHS))
	if len(data) >= raw/3 {
		t.Errorf("vjpg VHS: %d bytes vs raw %d — expected >3:1 on synthetic content", len(data), raw)
	}
}

func TestVJPGVariableElementSize(t *testing.T) {
	// Different frames compress to different sizes: the "encoded video
	// frames are variable sized" property that forces explicit
	// interpretation tables (Section 4.1).
	frames := genFrames(10, 64, 48, 11)
	sizes := map[int]bool{}
	for _, f := range frames {
		data, _ := VJPGEncode(f, QuantizerFor(media.QualityVHS))
		sizes[len(data)] = true
	}
	if len(sizes) < 2 {
		t.Error("all frames encoded to identical sizes")
	}
}

func TestVJPGDims(t *testing.T) {
	f := frame.Flat(33, 17, 1, 2, 3)
	data, _ := VJPGEncode(f, 8)
	w, h, err := VJPGDims(data)
	if err != nil || w != 33 || h != 17 {
		t.Errorf("dims = %dx%d err=%v", w, h, err)
	}
}

func TestVJPGErrors(t *testing.T) {
	f := frame.Flat(8, 8, 0, 0, 0)
	if _, err := VJPGEncode(f, 0); err == nil {
		t.Error("quantizer 0 must fail")
	}
	if _, err := VJPGEncode(f, 200); err == nil {
		t.Error("quantizer 200 must fail")
	}
	if _, err := VJPGDecode([]byte("XX")); err == nil {
		t.Error("bad magic must fail")
	}
	data, _ := VJPGEncode(f, 8)
	if _, err := VJPGDecode(data[:len(data)-1]); err == nil {
		t.Error("truncated stream must fail")
	}
}

func TestVMPGStorageOrderOutOfOrder(t *testing.T) {
	// Four frames, keys at 0 and 3: the paper's placement order
	// "1,4,2,3" (here 0-based: 0,3,1,2).
	frames := genFrames(4, 32, 24, 2)
	packets, err := VMPGEncode(frames, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	order := StorageOrder(packets)
	want := []int{0, 3, 1, 2}
	if len(order) != 4 {
		t.Fatalf("packets = %d", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("storage order = %v, want %v", order, want)
		}
	}
	if !packets[0].Key || !packets[1].Key || packets[2].Key || packets[3].Key {
		t.Error("key flags wrong")
	}
}

func TestVMPGRoundTrip(t *testing.T) {
	frames := genFrames(13, 48, 32, 4)
	packets, err := VMPGEncode(frames, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VMPGDecode(packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames", len(got))
	}
	for i := range frames {
		p, _ := frame.PSNR(frames[i], got[i])
		if p < 18 {
			t.Errorf("frame %d PSNR = %.1f", i, p)
		}
	}
}

// staticSceneFrames renders a fixed background with only a small
// moving box — the temporal-redundancy regime interframe coding
// exists for.
func staticSceneFrames(n, w, h int) []*frame.Frame {
	// A noise background is expensive to code intra but free to code
	// inter while it stays still.
	base := frame.Noise(w, h, 15)
	out := make([]*frame.Frame, n)
	for i := range out {
		f := base.Clone()
		bx := (i * 3) % (w - 8)
		for y := 4; y < 10 && y < h; y++ {
			for x := bx; x < bx+8; x++ {
				f.SetRGB(x, y, 240, 240, 30)
			}
		}
		out[i] = f
	}
	return out
}

func TestVMPGBeatsVJPGOnRate(t *testing.T) {
	// Interframe coding must beat intraframe on temporally redundant
	// content — the reason the paper's example uses MPEG-class rates.
	frames := staticSceneFrames(12, 64, 48)
	var vj, vm int
	for _, f := range frames {
		d, _ := VJPGEncode(f, 12)
		vj += len(d)
	}
	packets, _ := VMPGEncode(frames, 12, 6)
	for _, p := range packets {
		vm += len(p.Data)
	}
	if vm >= vj {
		t.Errorf("vmpg %d bytes >= vjpg %d bytes", vm, vj)
	}
}

func TestVMPGHeterogeneousDescriptors(t *testing.T) {
	frames := genFrames(6, 32, 24, 8)
	packets, _ := VMPGEncode(frames, 8, 5)
	keys, inter := 0, 0
	for _, p := range packets {
		if p.Desc().Key {
			keys++
		} else {
			inter++
		}
	}
	if keys != 2 || inter != 4 {
		t.Errorf("keys=%d inter=%d", keys, inter)
	}
}

func TestVMPGDecodeFrameRandomAccess(t *testing.T) {
	frames := genFrames(9, 32, 24, 9)
	packets, _ := VMPGEncode(frames, 8, 4)
	for _, idx := range []int{0, 2, 4, 7, 8} {
		got, err := VMPGDecodeFrame(packets, idx)
		if err != nil {
			t.Fatalf("frame %d: %v", idx, err)
		}
		p, _ := frame.PSNR(frames[idx], got)
		if p < 18 {
			t.Errorf("frame %d PSNR = %.1f", idx, p)
		}
	}
	if _, err := VMPGDecodeFrame(packets, 99); err == nil {
		t.Error("missing frame must fail")
	}
}

func TestVMPGSingleFrame(t *testing.T) {
	frames := genFrames(1, 16, 16, 1)
	packets, err := VMPGEncode(frames, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 1 || !packets[0].Key {
		t.Fatalf("packets = %+v", packets)
	}
	got, err := VMPGDecode(packets)
	if err != nil || len(got) != 1 {
		t.Fatalf("decode: %v", err)
	}
}

func TestVMPGErrors(t *testing.T) {
	frames := genFrames(4, 16, 16, 1)
	if _, err := VMPGEncode(frames, 8, 0); err == nil {
		t.Error("gop 0 must fail")
	}
	mixed := append(genFrames(2, 16, 16, 1), frame.Flat(8, 8, 0, 0, 0))
	if _, err := VMPGEncode(mixed, 8, 2); err == nil {
		t.Error("mixed geometry must fail")
	}
	// Decode with no keys.
	packets, _ := VMPGEncode(frames, 8, 3)
	var noKeys []VMPGPacket
	for _, p := range packets {
		if !p.Key {
			noKeys = append(noKeys, p)
		}
	}
	if _, err := VMPGDecode(noKeys); err == nil {
		t.Error("decode without keys must fail")
	}
}

func TestVJPGLayeredScalability(t *testing.T) {
	f := frame.Generator{W: 64, H: 48, Seed: 12}.Frame(3)
	base, enh, err := VJPGEncodeLayered(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Base alone: fewer bytes, half resolution, usable.
	if len(base) >= len(base)+len(enh) {
		t.Error("base must be a strict subset of the data")
	}
	low, err := VJPGDecodeBase(base)
	if err != nil {
		t.Fatal(err)
	}
	if low.Width != 32 || low.Height != 24 {
		t.Errorf("base dims = %dx%d", low.Width, low.Height)
	}
	// Full: better fidelity than upsampled base.
	full, err := VJPGDecodeLayered(base, enh)
	if err != nil {
		t.Fatal(err)
	}
	if full.Width != 64 || full.Height != 48 {
		t.Errorf("full dims = %dx%d", full.Width, full.Height)
	}
	pFull, _ := frame.PSNR(f, full)
	if pFull < 25 {
		t.Errorf("layered full PSNR = %.1f", pFull)
	}
}

func TestVJPGLayeredErrors(t *testing.T) {
	f := frame.Generator{W: 32, H: 32, Seed: 1}.Frame(0)
	base, enh, _ := VJPGEncodeLayered(f, 8)
	if _, err := VJPGDecodeLayered(base, enh[:3]); err == nil {
		t.Error("truncated enhancement must fail")
	}
	if _, err := VJPGDecodeLayered(base, append([]byte("XX"), enh[2:]...)); err == nil {
		t.Error("bad enhancement magic must fail")
	}
	yuv := frame.New(8, 8, media.ColorYUV422)
	if _, _, err := VJPGEncodeLayered(yuv, 8); err == nil {
		t.Error("non-RGB layered encode must fail")
	}
}

func TestQuantizerFor(t *testing.T) {
	if QuantizerFor(media.QualityStudio) != 1 {
		t.Error("studio must be near-lossless")
	}
	if QuantizerFor(media.QualityPreview) <= QuantizerFor(media.QualityVHS) {
		t.Error("preview must quantize harder than VHS")
	}
	if QuantizerFor(media.QualityUnspecified) != QuantizerFor(media.QualityVHS) {
		t.Error("default quality is VHS")
	}
}

func TestVMPGMotionCompensationHelpsOnPan(t *testing.T) {
	// A panning scene: content shifts 2 px/frame. Motion-compensated
	// intermediates must reconstruct well (keys 8 apart mean the
	// interpolation ghost would be 16 px wide without MC).
	w, h := 96, 64
	// A wide textured scene (smooth gradient + features) viewed
	// through a window panning 2 px/frame.
	wide := frame.Generator{W: w * 2, H: h, Seed: 31}.Frame(0)
	frames := make([]*frame.Frame, 9)
	for i := range frames {
		f := frame.New(w, h, media.ColorRGB)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				r, g, b := wide.RGB(x+2*i, y)
				f.SetRGB(x, y, r, g, b)
			}
		}
		frames[i] = f
	}
	packets, err := VMPGEncode(frames, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VMPGDecode(packets)
	if err != nil {
		t.Fatal(err)
	}
	// Every intermediate reconstructs well despite the 16-px key gap:
	// each block is within the ±4 px search range of one of the keys.
	for i := range frames {
		p, _ := frame.PSNR(frames[i], got[i])
		if p < 20 {
			t.Errorf("panning frame %d PSNR = %.1f", i, p)
		}
	}
	// And some blocks actually chose motion vectors: the motion field
	// should make the stream smaller than interpolation-only would
	// need for this content (sanity: intermediates smaller than keys).
	var keyBytes, interBytes, inter int
	for _, pk := range packets {
		if pk.Key {
			keyBytes += len(pk.Data)
		} else {
			interBytes += len(pk.Data)
			inter++
		}
	}
	if inter == 0 {
		t.Fatal("no intermediates")
	}
	if interBytes/inter >= keyBytes/2 {
		t.Errorf("avg intermediate %d B vs key %d B — MC ineffective", interBytes/inter, keyBytes/2)
	}
}

func TestMVCodeRoundTrip(t *testing.T) {
	for ref := 0; ref <= 1; ref++ {
		for dy := -mcRange; dy <= mcRange; dy++ {
			for dx := -mcRange; dx <= mcRange; dx++ {
				code := mvCode(ref, dx, dy)
				if code == 0 {
					t.Fatalf("mv (%d,%d,%d) coded as interpolation", ref, dx, dy)
				}
				gr, gx, gy := mvDecode(code)
				if gr != ref || gx != dx || gy != dy {
					t.Fatalf("mv (%d,%d,%d) → %d → (%d,%d,%d)", ref, dx, dy, code, gr, gx, gy)
				}
			}
		}
	}
}

func TestVJPGRoundTripProperty(t *testing.T) {
	// Over random generator seeds and geometries, decode(encode(f))
	// stays within the VHS quality bound and never errors.
	if err := quick.Check(func(seed int64, w8, h8 uint8) bool {
		w := int(w8%120) + 8
		h := int(h8%90) + 8
		f := frame.Generator{W: w, H: h, Seed: seed}.Frame(int(seed % 17))
		data, err := VJPGEncode(f, QuantizerFor(media.QualityVHS))
		if err != nil {
			return false
		}
		rec, err := VJPGDecode(data)
		if err != nil {
			return false
		}
		if rec.Width != w || rec.Height != h {
			return false
		}
		p, err := frame.PSNR(f, rec)
		return err == nil && p > 18
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestADPCMRoundTripProperty(t *testing.T) {
	// Random tones through ADPCM keep at least 15 dB SNR and exact
	// frame counts.
	if err := quick.Check(func(seed int64, n16 uint16, ch8 uint8) bool {
		frames := int(n16%8000) + 2000
		channels := int(ch8%2) + 1
		freq := 100 + float64(absSeed(seed)%2000)
		b := audio.Sine(frames, channels, freq, 44100, 0.5)
		blocks, err := ADPCMEncode(b, 512)
		if err != nil {
			return false
		}
		got, err := ADPCMDecode(blocks, channels)
		if err != nil {
			return false
		}
		if got.Frames() != frames {
			return false
		}
		// Measure steady state: the IMA step size needs ~1000 samples
		// to adapt from its tiny initial value.
		half := frames / 2
		return audio.SNR(b.Slice(half, frames), got.Slice(half, frames)) > 12
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func absSeed(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

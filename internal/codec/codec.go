// Package codec implements the compression substrates the paper's
// examples depend on, written from scratch over the stdlib:
//
//   - PCM: trivial sample packing (lossless).
//   - ADPCM: IMA-style adaptive differential PCM, 4:1, block-based
//     with per-block varying parameters — the paper's example of a
//     heterogeneous stream.
//   - vjpg: an intraframe transform-free image codec (quantize +
//     horizontal prediction + RLE/varint entropy). Every frame is a
//     key frame, so rearrangement/reverse play is easy — the
//     structural property the paper attributes to (M)JPEG.
//   - vmpg: an interframe codec with key frames and interpolated
//     intermediate frames stored out of presentation order ("with a
//     sequence of four elements where the first and last are keys, the
//     placement order could be 1,4,2,3") — the structural property the
//     paper attributes to MPEG.
//
// These are simulations of the *structure* of JPEG/MPEG-class codecs,
// not bit-compatible implementations (see DESIGN.md §5): variable
// element sizes, quality-factor-driven rate, key/intermediate decode
// dependencies, and scalability all behave as the data model requires.
package codec

import (
	"errors"

	"timedmedia/internal/media"
)

// Shared errors.
var (
	ErrCorrupt     = errors.New("codec: corrupt data")
	ErrBadQuality  = errors.New("codec: unsupported quality factor")
	ErrBadGeometry = errors.New("codec: frame geometry mismatch")
)

// QuantizerFor maps a descriptive video quality factor to the
// quantization step of the vjpg/vmpg coders. The paper insists these
// numeric parameters stay invisible at the data modeling level; this
// is the single place where the mapping lives.
func QuantizerFor(q media.Quality) int {
	switch q {
	case media.QualityPreview:
		return 20
	case media.QualityVHS:
		return 12
	case media.QualityBroadcast:
		return 4
	case media.QualityStudio:
		return 1
	default:
		return 12
	}
}

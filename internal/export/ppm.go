package export

import (
	"bufio"
	"fmt"
	"io"

	"timedmedia/internal/frame"
	"timedmedia/internal/media"
)

// WritePPM encodes an RGB frame as binary PPM (P6), viewable with any
// image tool.
func WritePPM(w io.Writer, f *frame.Frame) error {
	if f.Model != media.ColorRGB {
		return fmt.Errorf("%w: PPM needs RGB, got %v", ErrFormat, f.Model)
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.Width, f.Height); err != nil {
		return err
	}
	_, err := w.Write(f.Pix)
	return err
}

// ReadPPM parses a binary PPM (P6) image.
func ReadPPM(r io.Reader) (*frame.Frame, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("%w: ppm header: %v", ErrCorruptFile, err)
	}
	if magic != "P6" || maxVal != 255 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: ppm header %q %d %d %d", ErrFormat, magic, w, h, maxVal)
	}
	// Single whitespace byte after maxval.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("%w: ppm separator", ErrCorruptFile)
	}
	f := frame.New(w, h, media.ColorRGB)
	if _, err := io.ReadFull(br, f.Pix); err != nil {
		return nil, fmt.Errorf("%w: ppm body: %v", ErrCorruptFile, err)
	}
	return f, nil
}

package export

import (
	"encoding/binary"
	"fmt"
	"io"

	"timedmedia/internal/music"
)

// Standard MIDI File (format 0) writer and reader for music sequences.
// Division is written as ticks-per-quarter assuming the sequence's
// pulse system runs at 480 PPQ / 120 BPM (the package default); a
// tempo meta event records 120 BPM explicitly.

const smfPPQ = 480

// WriteSMF encodes a sequence as a single-track (format 0) MIDI file.
func WriteSMF(w io.Writer, seq *music.Sequence) error {
	if err := seq.Validate(); err != nil {
		return err
	}
	var track []byte
	// Tempo meta event: 120 BPM = 500000 µs/quarter.
	track = append(track, 0x00, 0xFF, 0x51, 0x03, 0x07, 0xA1, 0x20)
	last := int64(0)
	for _, e := range seq.Events {
		delta := e.Tick - last
		if delta < 0 {
			delta = 0
		}
		last = e.Tick
		track = appendVarLen(track, uint32(delta))
		switch e.Kind {
		case music.NoteOn:
			track = append(track, 0x90|e.Channel, e.Key&0x7F, e.Velocity&0x7F)
		case music.NoteOff:
			track = append(track, 0x80|e.Channel, e.Key&0x7F, 0x40)
		case music.Program:
			track = append(track, 0xC0|e.Channel, byte(e.Value)&0x7F)
		case music.Tempo:
			us := e.Value
			track = append(track, 0xFF, 0x51, 0x03, byte(us>>16), byte(us>>8), byte(us))
		default:
			return fmt.Errorf("%w: event kind %v", ErrFormat, e.Kind)
		}
	}
	// End of track.
	track = append(track, 0x00, 0xFF, 0x2F, 0x00)

	var out []byte
	out = append(out, "MThd"...)
	out = binary.BigEndian.AppendUint32(out, 6)
	out = binary.BigEndian.AppendUint16(out, 0) // format 0
	out = binary.BigEndian.AppendUint16(out, 1) // one track
	out = binary.BigEndian.AppendUint16(out, smfPPQ)
	out = append(out, "MTrk"...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(track)))
	out = append(out, track...)
	_, err := w.Write(out)
	return err
}

// ReadSMF parses a format-0 MIDI file into a sequence (note and
// program events; other events are skipped).
func ReadSMF(r io.Reader) (*music.Sequence, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 22 || string(data[:4]) != "MThd" {
		return nil, fmt.Errorf("%w: MThd", ErrCorruptFile)
	}
	format := binary.BigEndian.Uint16(data[8:])
	ntracks := binary.BigEndian.Uint16(data[10:])
	if format != 0 || ntracks != 1 {
		return nil, fmt.Errorf("%w: only format 0 single-track files", ErrFormat)
	}
	if string(data[14:18]) != "MTrk" {
		return nil, fmt.Errorf("%w: MTrk", ErrCorruptFile)
	}
	trackLen := int(binary.BigEndian.Uint32(data[18:]))
	if 22+trackLen > len(data) {
		return nil, fmt.Errorf("%w: track overruns", ErrCorruptFile)
	}
	track := data[22 : 22+trackLen]

	seq := music.NewSequence()
	tick := int64(0)
	off := 0
	var running byte
	for off < len(track) {
		delta, n, err := readVarLen(track[off:])
		if err != nil {
			return nil, err
		}
		off += n
		tick += int64(delta)
		if off >= len(track) {
			return nil, fmt.Errorf("%w: truncated event", ErrCorruptFile)
		}
		status := track[off]
		if status < 0x80 {
			status = running // running status
		} else {
			off++
		}
		running = status
		switch {
		case status == 0xFF: // meta
			if off+1 >= len(track) {
				return nil, fmt.Errorf("%w: meta", ErrCorruptFile)
			}
			metaType := track[off]
			off++
			l, n, err := readVarLen(track[off:])
			if err != nil {
				return nil, err
			}
			off += n
			if off+int(l) > len(track) {
				return nil, fmt.Errorf("%w: meta body", ErrCorruptFile)
			}
			if metaType == 0x51 && l == 3 {
				us := uint32(track[off])<<16 | uint32(track[off+1])<<8 | uint32(track[off+2])
				seq.Events = append(seq.Events, music.Event{Tick: tick, Kind: music.Tempo, Value: us})
			}
			if metaType == 0x2F {
				off += int(l)
				goto done
			}
			off += int(l)
		case status&0xF0 == 0x90:
			if off+1 >= len(track) {
				return nil, fmt.Errorf("%w: note on", ErrCorruptFile)
			}
			key, vel := track[off], track[off+1]
			off += 2
			kind := music.NoteOn
			if vel == 0 { // velocity-0 note-on is note-off
				kind = music.NoteOff
			}
			seq.Events = append(seq.Events, music.Event{Tick: tick, Kind: kind, Channel: status & 0x0F, Key: key, Velocity: vel})
		case status&0xF0 == 0x80:
			if off+1 >= len(track) {
				return nil, fmt.Errorf("%w: note off", ErrCorruptFile)
			}
			key := track[off]
			off += 2
			seq.Events = append(seq.Events, music.Event{Tick: tick, Kind: music.NoteOff, Channel: status & 0x0F, Key: key})
		case status&0xF0 == 0xC0 || status&0xF0 == 0xD0: // program / channel pressure: 1 data byte
			if off >= len(track) {
				return nil, fmt.Errorf("%w: short event", ErrCorruptFile)
			}
			if status&0xF0 == 0xC0 {
				seq.Events = append(seq.Events, music.Event{Tick: tick, Kind: music.Program, Channel: status & 0x0F, Value: uint32(track[off])})
			}
			off++
		default: // other channel events: 2 data bytes, skipped
			off += 2
			if off > len(track) {
				return nil, fmt.Errorf("%w: short event", ErrCorruptFile)
			}
		}
	}
done:
	seq.Sort()
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	return seq, nil
}

// appendVarLen writes a MIDI variable-length quantity.
func appendVarLen(dst []byte, v uint32) []byte {
	var tmp [4]byte
	n := 0
	tmp[n] = byte(v & 0x7F)
	n++
	for v >>= 7; v > 0; v >>= 7 {
		tmp[n] = byte(v&0x7F) | 0x80
		n++
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, tmp[i])
	}
	return dst
}

// readVarLen parses a MIDI variable-length quantity.
func readVarLen(src []byte) (uint32, int, error) {
	var v uint32
	for i := 0; i < len(src) && i < 4; i++ {
		v = v<<7 | uint32(src[i]&0x7F)
		if src[i]&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: varlen", ErrCorruptFile)
}

// Package export writes media objects in standard interchange formats
// — RIFF/WAVE for audio, Standard MIDI Files for music, binary PPM for
// frames — so content produced by the database can be inspected with
// ordinary tools. Importers for WAV and SMF close the loop for
// round-trip tests and external material.
package export

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"timedmedia/internal/audio"
)

// Errors.
var (
	ErrFormat      = errors.New("export: unsupported format")
	ErrCorruptFile = errors.New("export: corrupt file")
)

// WriteWAV encodes a PCM buffer as a 16-bit RIFF/WAVE stream.
func WriteWAV(w io.Writer, b *audio.Buffer, sampleRateHz int) error {
	if sampleRateHz <= 0 || b.Channels <= 0 {
		return fmt.Errorf("%w: rate %d, channels %d", ErrFormat, sampleRateHz, b.Channels)
	}
	dataLen := len(b.Samples) * 2
	var hdr []byte
	hdr = append(hdr, "RIFF"...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(36+dataLen))
	hdr = append(hdr, "WAVE"...)
	hdr = append(hdr, "fmt "...)
	hdr = binary.LittleEndian.AppendUint32(hdr, 16)
	hdr = binary.LittleEndian.AppendUint16(hdr, 1) // PCM
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(b.Channels))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(sampleRateHz))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(sampleRateHz*b.Channels*2)) // byte rate
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(b.Channels*2))              // block align
	hdr = binary.LittleEndian.AppendUint16(hdr, 16)                                // bits
	hdr = append(hdr, "data"...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(dataLen))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	body := make([]byte, dataLen)
	for i, s := range b.Samples {
		binary.LittleEndian.PutUint16(body[i*2:], uint16(s))
	}
	_, err := w.Write(body)
	return err
}

// ReadWAV parses a 16-bit PCM RIFF/WAVE stream.
func ReadWAV(r io.Reader) (*audio.Buffer, int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < 44 || string(data[:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return nil, 0, fmt.Errorf("%w: RIFF header", ErrCorruptFile)
	}
	// Walk chunks.
	var channels, bits int
	var rate int
	var body []byte
	off := 12
	for off+8 <= len(data) {
		id := string(data[off : off+4])
		size := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		if off+size > len(data) {
			return nil, 0, fmt.Errorf("%w: chunk %q overruns", ErrCorruptFile, id)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, 0, fmt.Errorf("%w: fmt chunk", ErrCorruptFile)
			}
			if binary.LittleEndian.Uint16(data[off:]) != 1 {
				return nil, 0, fmt.Errorf("%w: non-PCM wav", ErrFormat)
			}
			channels = int(binary.LittleEndian.Uint16(data[off+2:]))
			rate = int(binary.LittleEndian.Uint32(data[off+4:]))
			bits = int(binary.LittleEndian.Uint16(data[off+14:]))
		case "data":
			body = data[off : off+size]
		}
		off += size + size%2 // chunks are word-aligned
	}
	if channels <= 0 || rate <= 0 || body == nil {
		return nil, 0, fmt.Errorf("%w: missing fmt/data", ErrCorruptFile)
	}
	if bits != 16 {
		return nil, 0, fmt.Errorf("%w: %d-bit wav", ErrFormat, bits)
	}
	if len(body)%2 != 0 || (len(body)/2)%channels != 0 {
		return nil, 0, fmt.Errorf("%w: data length", ErrCorruptFile)
	}
	b := &audio.Buffer{Channels: channels, Samples: make([]int16, len(body)/2)}
	for i := range b.Samples {
		b.Samples[i] = int16(binary.LittleEndian.Uint16(body[i*2:]))
	}
	return b, rate, nil
}

package export

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"timedmedia/internal/audio"
	"timedmedia/internal/frame"
	"timedmedia/internal/music"
)

func TestWAVRoundTrip(t *testing.T) {
	b := audio.Sweep(4410, 2, 100, 3000, 44100, 0.7)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, b, 44100); err != nil {
		t.Fatal(err)
	}
	got, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 44100 || got.Channels != 2 {
		t.Errorf("rate=%d ch=%d", rate, got.Channels)
	}
	if !math.IsInf(audio.SNR(b, got), 1) {
		t.Error("WAV round trip not lossless")
	}
}

func TestWAVHeaderFields(t *testing.T) {
	b := audio.NewBuffer(10, 1)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, b, 8000); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if string(data[:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		t.Error("bad RIFF header")
	}
	if len(data) != 44+20 {
		t.Errorf("file length = %d", len(data))
	}
}

func TestWAVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, audio.NewBuffer(1, 1), 0); !errors.Is(err, ErrFormat) {
		t.Errorf("rate 0: %v", err)
	}
	if _, _, err := ReadWAV(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("short: %v", err)
	}
	// Valid header but non-PCM format code.
	b := audio.NewBuffer(4, 1)
	buf.Reset()
	WriteWAV(&buf, b, 8000)
	data := buf.Bytes()
	data[20] = 3 // IEEE float
	if _, _, err := ReadWAV(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Errorf("non-pcm: %v", err)
	}
}

func TestSMFRoundTrip(t *testing.T) {
	seq := music.Scale(60, 8, 2)
	seq.Events = append([]music.Event{{Tick: 0, Kind: music.Program, Channel: 2, Value: 19}}, seq.Events...)
	var buf bytes.Buffer
	if err := WriteSMF(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSMF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The reader adds the tempo meta event we always write.
	notesWant, _ := seq.Notes()
	notesGot, err := got.Notes()
	if err != nil {
		t.Fatal(err)
	}
	if len(notesGot) != len(notesWant) {
		t.Fatalf("notes = %d, want %d", len(notesGot), len(notesWant))
	}
	for i := range notesWant {
		if notesGot[i].Tick != notesWant[i].Tick || notesGot[i].Key != notesWant[i].Key ||
			notesGot[i].Dur != notesWant[i].Dur || notesGot[i].Channel != notesWant[i].Channel {
			t.Errorf("note %d = %+v, want %+v", i, notesGot[i], notesWant[i])
		}
	}
	// Program change survives.
	foundProg := false
	for _, e := range got.Events {
		if e.Kind == music.Program && e.Value == 19 && e.Channel == 2 {
			foundProg = true
		}
	}
	if !foundProg {
		t.Error("program change lost")
	}
	// MThd header shape.
	data := buf.Bytes()
	if string(data[:4]) != "MThd" || string(data[14:18]) != "MTrk" {
		t.Error("bad SMF chunks")
	}
}

func TestSMFErrors(t *testing.T) {
	if _, err := ReadSMF(bytes.NewReader([]byte("not a midi file"))); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("garbage: %v", err)
	}
	// Format 1 rejected.
	seq := music.Scale(60, 2, 0)
	var buf bytes.Buffer
	WriteSMF(&buf, seq)
	data := buf.Bytes()
	data[9] = 1 // format 1
	if _, err := ReadSMF(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Errorf("format 1: %v", err)
	}
}

func TestVarLenRoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 127, 128, 16383, 16384, 2097151, 2097152} {
		enc := appendVarLen(nil, v)
		got, n, err := readVarLen(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("varlen %d: got %d n=%d err=%v", v, got, n, err)
		}
	}
	if _, _, err := readVarLen([]byte{0x80, 0x80, 0x80, 0x80}); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("runaway varlen: %v", err)
	}
}

func TestPPMRoundTrip(t *testing.T) {
	f := frame.Generator{W: 20, H: 14, Seed: 6}.Frame(2)
	var buf bytes.Buffer
	if err := WritePPM(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := frame.PSNR(f, got)
	if !math.IsInf(p, 1) {
		t.Error("PPM round trip not lossless")
	}
}

func TestPPMErrors(t *testing.T) {
	yuv := frame.New(4, 4, 2) // ColorYUV422
	var buf bytes.Buffer
	if err := WritePPM(&buf, yuv); !errors.Is(err, ErrFormat) {
		t.Errorf("yuv: %v", err)
	}
	if _, err := ReadPPM(bytes.NewReader([]byte("P3\n2 2\n255\n"))); !errors.Is(err, ErrFormat) {
		t.Errorf("ascii ppm: %v", err)
	}
	if _, err := ReadPPM(bytes.NewReader([]byte("P6\n2 2\n255\nxx"))); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("short body: %v", err)
	}
}

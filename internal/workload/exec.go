package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Execute drives a generated schedule against a live server, open
// loop: each (group, client) pair runs its own goroutine and
// dispatches its items at their scheduled offsets, regardless of how
// long earlier requests took. Open-loop load is what makes latency
// comparisons honest — a closed loop slows its own arrival rate when
// the server slows down, hiding exactly the degradation a policy
// sweep is trying to measure.

// ExecOptions tune an Execute run.
type ExecOptions struct {
	// Client is the HTTP client (default 30s timeout).
	Client *http.Client
	// TimeScale divides scheduled offsets: 2 replays the schedule at
	// double speed. 0 means 1 (real time).
	TimeScale float64
}

// OpSummary is one operation's outcome distribution.
type OpSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	Shed   int     `json:"shed"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// RunResult is what Execute measured.
type RunResult struct {
	ScheduleHash  string                `json:"schedule_hash"`
	Items         int                   `json:"items"`
	ElapsedSec    float64               `json:"elapsed_sec"`
	TotalOps      int                   `json:"total_ops"`
	TotalErrors   int                   `json:"total_errors"`
	TotalShed     int                   `json:"total_shed"`
	ThroughputOps float64               `json:"throughput_ops_per_sec"`
	Overall       OpSummary             `json:"overall"`
	Ops           map[string]*OpSummary `json:"ops"`
}

// opAgg accumulates one op's raw outcomes inside a single client
// goroutine (no locking needed until the merge).
type opAgg struct {
	lat    []time.Duration
	errors int
	shed   int
}

// Execute runs the schedule and aggregates outcomes. Per-request
// failures are counted, not returned: an overloaded server erroring
// on half the workload is a measurement, not an execution failure.
func Execute(base string, sched *Schedule, opts ExecOptions) (*RunResult, error) {
	if len(sched.Items) == 0 {
		return nil, fmt.Errorf("workload: empty schedule")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	scale := opts.TimeScale
	if scale <= 0 {
		scale = 1
	}
	// Split the global schedule into per-client programs.
	type key struct{ g, c int }
	programs := map[key][]Item{}
	for _, it := range sched.Items {
		k := key{it.Group, it.Client}
		programs[k] = append(programs[k], it)
	}
	var mu sync.Mutex
	merged := map[string]*opAgg{}
	var wg sync.WaitGroup
	start := time.Now()
	for _, prog := range programs {
		wg.Add(1)
		go func(items []Item) {
			defer wg.Done()
			local := map[string]*opAgg{}
			for _, it := range items {
				due := start.Add(time.Duration(float64(it.AtNs) / scale))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				agg := local[it.Op]
				if agg == nil {
					agg = &opAgg{}
					local[it.Op] = agg
				}
				runItem(client, base, it, agg)
			}
			mu.Lock()
			for op, a := range local {
				m := merged[op]
				if m == nil {
					m = &opAgg{}
					merged[op] = m
				}
				m.lat = append(m.lat, a.lat...)
				m.errors += a.errors
				m.shed += a.shed
			}
			mu.Unlock()
		}(prog)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &RunResult{
		ScheduleHash: sched.Hash(),
		Items:        len(sched.Items),
		ElapsedSec:   elapsed.Seconds(),
		Ops:          map[string]*OpSummary{},
	}
	var all []time.Duration
	for op, a := range merged {
		s := summarize(a)
		res.Ops[op] = s
		res.TotalOps += s.Count
		res.TotalErrors += s.Errors
		res.TotalShed += s.Shed
		all = append(all, a.lat...)
	}
	res.Overall = *summarize(&opAgg{lat: all, errors: res.TotalErrors, shed: res.TotalShed})
	if elapsed > 0 {
		res.ThroughputOps = float64(res.TotalOps) / elapsed.Seconds()
	}
	return res, nil
}

// runItem issues one scheduled request (plus the pinned follow-up
// pages of a pquery) into agg.
func runItem(client *http.Client, base string, it Item, agg *opAgg) {
	status, body, d, err := send(client, base, it.Method, it.Path, it.Body)
	agg.lat = append(agg.lat, d)
	switch {
	case err != nil:
		agg.errors++
		return
	case status == http.StatusServiceUnavailable:
		agg.shed++
		agg.errors++
		return
	case it.Op == "asof" && (status == http.StatusGone || status == http.StatusNotFound):
		// A drawn sequence below the version retention floor (410
		// version_gone) or a name that did not exist yet at that
		// sequence (404) is a deterministic outcome of the draw, not a
		// server failure.
		return
	case status >= 400 && !(it.Method == http.MethodPost && status == http.StatusCreated):
		agg.errors++
		return
	}
	if it.Op != "pquery" {
		return
	}
	// Epoch-pinned pagination: walk the remaining pages pinned to the
	// first page's epoch so they are mutually consistent. A 410 means
	// the retention ring evicted the pin mid-walk — the client-side
	// protocol is to drop the pin and restart from the current epoch,
	// which is what real paginating clients do.
	var page struct {
		Epoch      uint64 `json:"epoch"`
		NextOffset *int   `json:"next_offset"`
	}
	pins := 0
	for json.Unmarshal(body, &page) == nil && page.NextOffset != nil && pins < 8 {
		pins++
		path := fmt.Sprintf("%s&offset=%d&epoch=%d",
			stripParams(it.Path, "offset", "epoch"), *page.NextOffset, page.Epoch)
		st, b, d2, err := send(client, base, http.MethodGet, path, nil)
		agg.lat = append(agg.lat, d2)
		page.NextOffset = nil
		switch {
		case err != nil:
			agg.errors++
			return
		case st == http.StatusGone:
			// Pin evicted: restart unpinned at the same offset.
			st2, b2, d3, err2 := send(client, base, http.MethodGet,
				fmt.Sprintf("%s&offset=0", stripParams(it.Path, "offset", "epoch")), nil)
			agg.lat = append(agg.lat, d3)
			if err2 != nil || st2 != http.StatusOK {
				agg.errors++
				return
			}
			body = b2
			_ = json.Unmarshal(body, &page)
		case st != http.StatusOK:
			agg.errors++
			return
		default:
			body = b
			_ = json.Unmarshal(body, &page)
		}
	}
}

// stripParams removes the named query parameters from a path so a
// follow-up page can re-set them.
func stripParams(path string, names ...string) string {
	base, query, ok := strings.Cut(path, "?")
	if !ok {
		return path
	}
	var kept []string
	for _, kv := range strings.Split(query, "&") {
		keep := true
		for _, n := range names {
			if strings.HasPrefix(kv, n+"=") {
				keep = false
			}
		}
		if keep {
			kept = append(kept, kv)
		}
	}
	return base + "?" + strings.Join(kept, "&")
}

// send issues one request, draining the body.
func send(client *http.Client, base, method, path string, reqBody []byte) (status int, body []byte, d time.Duration, err error) {
	var req *http.Request
	if len(reqBody) > 0 {
		req, err = http.NewRequest(method, base+path, bytes.NewReader(reqBody))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(method, base+path, nil)
	}
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, time.Since(start), err
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	d = time.Since(start)
	if err != nil {
		return 0, nil, d, err
	}
	return resp.StatusCode, body, d, nil
}

// summarize turns raw latencies into an OpSummary.
func summarize(a *opAgg) *OpSummary {
	s := &OpSummary{Count: len(a.lat), Errors: a.errors, Shed: a.shed}
	if len(a.lat) == 0 {
		return s
	}
	sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
	var sum time.Duration
	for _, d := range a.lat {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 { return ms(a.lat[int(p*float64(len(a.lat)-1))]) }
	s.MeanMs = ms(sum / time.Duration(len(a.lat)))
	s.P50Ms = pct(0.50)
	s.P95Ms = pct(0.95)
	s.P99Ms = pct(0.99)
	s.MaxMs = ms(a.lat[len(a.lat)-1])
	return s
}

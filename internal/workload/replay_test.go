package workload

import (
	"bytes"
	"fmt"
	"testing"
)

// replayRecords builds a trace whose records span every divergence
// class against newFakeMedia(3, epoch, 1): a volatile-only match, a
// replayable POST, a matching error response, a pinned page the
// replay-side ring evicted (410 epoch_gone), a real mismatch, and a
// recorded shed.
func replayRecords(epoch uint64) []TraceRecord {
	objBody := fmt.Sprintf(`{"name":"clipA","id":99,"epoch":%d,"kind":"video"}`, epoch+100)
	batchBody := fmt.Sprintf(`{"created":2,"epoch":%d}`, epoch+100)
	missBody := `{"error":{"code":"not_found","message":"recorded wording"}}`
	return []TraceRecord{
		// Recorded against a different id and epoch: normalization must
		// still call it a match.
		{Seq: 1, Method: "GET", Path: "/v1/objects/clipA", RouteName: "object",
			Status: 200, Digest: BodyDigest("application/json", []byte(objBody)), LatencyNs: 1000},
		{Seq: 2, Method: "POST", Path: "/v1/objects:batch", RouteName: "batch",
			Body:   []byte(`{"items":[{"name":"b1"}]}`),
			Status: 201, Digest: BodyDigest("application/json", []byte(batchBody)), LatencyNs: 1500},
		{Seq: 3, Method: "GET", Path: "/v1/objects/missing", Status: 404, ErrCode: "not_found",
			Digest: BodyDigest("application/json", []byte(missBody)), LatencyNs: 800},
		// Recorded 200 on a pinned page; the replay-side server evicts
		// the pin → deterministic 410 epoch_gone, counted, never failed.
		{Seq: 4, Method: "GET", Path: "/v1/query?kind=video&limit=2&offset=2&epoch=1", RouteName: "query",
			Status: 200, Digest: "recorded-page-digest", LatencyNs: 900},
		// Recorded shed: no server effect, replay skips it.
		{Seq: 5, Method: "GET", Path: "/v1/objects/clipA", Status: 503, ErrCode: "overloaded",
			Shed: true, LatencyNs: 10},
	}
}

func TestReplayClassifiesDivergence(t *testing.T) {
	ts := newFakeMedia(3, 5, 1)
	defer ts.Close()
	records := replayRecords(5)
	rep, timing, err := Replay(ts.URL, TraceMeta{Objects: 3}, records, "digest123", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InitialMatch || rep.InitialObjects != 3 {
		t.Errorf("initial: objects=%d match=%v", rep.InitialObjects, rep.InitialMatch)
	}
	if rep.Records != 5 || rep.Replayed != 4 {
		t.Errorf("records=%d replayed=%d", rep.Records, rep.Replayed)
	}
	if rep.Matches != 3 {
		t.Errorf("matches = %d, want 3 (volatile fields and error wording must not count)", rep.Matches)
	}
	if rep.EpochGone != 1 || rep.RecordedShed != 1 || rep.Mismatches != 0 {
		t.Errorf("epoch_gone=%d shed=%d mismatches=%d", rep.EpochGone, rep.RecordedShed, rep.Mismatches)
	}
	if !rep.Equivalent {
		t.Error("report not equivalent despite zero mismatches")
	}
	if rep.Routes["object"].Matches != 1 || rep.Routes["query"].EpochGone != 1 || rep.Routes["shed"].Shed != 1 {
		t.Errorf("route counts = %+v", rep.Routes)
	}
	if timing.ThroughputOps <= 0 {
		t.Errorf("timing sidecar = %+v", timing)
	}
}

func TestReplayDetectsMismatch(t *testing.T) {
	ts := newFakeMedia(3, 5, 0)
	defer ts.Close()
	records := []TraceRecord{
		// Status diverges (recorded 200, server 404).
		{Seq: 1, Method: "GET", Path: "/v1/objects/missing", Status: 200, Digest: "x", LatencyNs: 1},
		// Digest diverges on a stable field.
		{Seq: 2, Method: "GET", Path: "/v1/objects/clipA", Status: 200, Digest: "stale-digest", LatencyNs: 1},
	}
	rep, _, err := Replay(ts.URL, TraceMeta{Objects: 3}, records, "d", ReplayOptions{MaxMismatchSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 2 || rep.Equivalent {
		t.Errorf("mismatches=%d equivalent=%v", rep.Mismatches, rep.Equivalent)
	}
	if len(rep.MismatchSamples) != 1 {
		t.Fatalf("samples = %d, want capped at 1", len(rep.MismatchSamples))
	}
	s := rep.MismatchSamples[0]
	if s.Seq != 1 || s.RecordedStatus != 200 || s.ReplayedStatus != 404 || s.ReplayedCode != "not_found" {
		t.Errorf("sample = %+v", s)
	}
}

func TestReplayInitialMismatch(t *testing.T) {
	ts := newFakeMedia(7, 5, 0)
	defer ts.Close()
	rep, _, err := Replay(ts.URL, TraceMeta{Objects: 3}, nil, "d", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialMatch || rep.Equivalent {
		t.Error("catalog rebuilt from the wrong starting point passed as equivalent")
	}
}

func TestReplayTransportErrors(t *testing.T) {
	records := []TraceRecord{{Seq: 1, Method: "GET", Path: "/v1/objects/a", Status: 200, Digest: "d"}}
	rep, _, err := Replay("http://127.0.0.1:1", TraceMeta{}, records, "d", ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 1 || rep.Mismatches != 1 || rep.Equivalent {
		t.Errorf("transport=%d mismatches=%d equivalent=%v",
			rep.TransportErrors, rep.Mismatches, rep.Equivalent)
	}
	if rep.InitialObjects != -1 {
		t.Errorf("unreachable probe = %d, want -1", rep.InitialObjects)
	}
}

// TestReplayReportDeterministic is the property the CI lane diffs:
// two replays of one trace against equivalent servers render
// byte-identical reports.
func TestReplayReportDeterministic(t *testing.T) {
	records := replayRecords(5)
	var encodings [2][]byte
	for i := range encodings {
		ts := newFakeMedia(3, 5, 1)
		rep, _, err := Replay(ts.URL, TraceMeta{Objects: 3}, records, "digest123", ReplayOptions{})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		encodings[i] = EncodeReport(rep)
	}
	if !bytes.Equal(encodings[0], encodings[1]) {
		t.Fatalf("replay reports differ:\n--- first\n%s\n--- second\n%s", encodings[0], encodings[1])
	}
}

func TestTraceRecordRoute(t *testing.T) {
	if r := (TraceRecord{RouteName: "object"}).Route(); r != "object" {
		t.Errorf("route = %q", r)
	}
	if r := (TraceRecord{Shed: true}).Route(); r != "shed" {
		t.Errorf("shed route = %q", r)
	}
	if r := (TraceRecord{}).Route(); r != "other" {
		t.Errorf("unmatched route = %q", r)
	}
}

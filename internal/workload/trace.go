package workload

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The capture trace is the recorded truth of one live run: every
// request the server saw — including the ones it shed — in completion
// order, with enough detail to re-issue the mutations and check the
// reads. The format is framed and checksummed like the repo's other
// on-disk formats (durable, wal):
//
//	"TBMTRC1\n"                              8-byte magic
//	frame := u32 length | u32 crc32c(json) | json
//
// The first frame is the TraceMeta; every later frame is a
// TraceRecord. A torn tail (partial final frame after a crash or
// kill) terminates reading cleanly rather than erroring, mirroring
// the WAL's torn-tail tolerance.

const traceMagic = "TBMTRC1\n"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxTraceFrame bounds a single frame so a corrupt length field
// cannot balloon an allocation.
const maxTraceFrame = 64 << 20

// TraceMeta describes the catalog state a trace was recorded against,
// so replay can verify it is rebuilding from the same starting point.
type TraceMeta struct {
	// Objects is the catalog size when recording started.
	Objects int `json:"objects"`
	// Seq is the journal sequence when recording started.
	Seq uint64 `json:"seq"`
	// Epoch is the published epoch when recording started.
	Epoch uint64 `json:"epoch"`
}

// TraceRecord is one captured request/response pair.
type TraceRecord struct {
	// Seq is the record's position in the trace (completion order,
	// 1-based).
	Seq uint64 `json:"seq"`
	// AtNs is the request's start offset from the beginning of
	// recording — scoring derives throughput from it.
	AtNs int64 `json:"at_ns"`
	// Method and Path (including the query string) identify the
	// request; Body is the request body for non-GET methods.
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   []byte `json:"body,omitempty"`
	// RouteName is the matched route ("object", "query", ...), empty
	// when the request never matched one (404s, shed requests).
	RouteName string `json:"route,omitempty"`
	// Status is the recorded response status; ErrCode is the stable
	// error code when the response was a JSON error envelope.
	Status  int    `json:"status"`
	ErrCode string `json:"err_code,omitempty"`
	// Digest is the normalized response-body digest (see BodyDigest).
	Digest string `json:"digest"`
	// Epoch is the epoch the response was served from (its ETag),
	// zero when the response carried none.
	Epoch uint64 `json:"epoch,omitempty"`
	// Shed marks a request rejected by the load-shedding 503 path:
	// part of the workload truth, but it never reached a handler, so
	// replay re-issues nothing for it.
	Shed bool `json:"shed,omitempty"`
	// LatencyNs is the recorded service time. It feeds policy scoring
	// only — replay reports never include it, keeping them
	// byte-deterministic.
	LatencyNs int64 `json:"latency_ns"`
}

// Recorder appends trace frames to a writer. Record is safe for
// concurrent use — requests complete concurrently — and assigns the
// completion-order sequence numbers itself.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq uint64
	err error
}

// NewRecorder writes the magic and meta frame and returns a recorder
// appending to w. If w is also an io.Closer, Close closes it.
func NewRecorder(w io.Writer, meta TraceMeta) (*Recorder, error) {
	r := &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	if _, err := r.w.WriteString(traceMagic); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if err := r.writeFrame(meta); err != nil {
		return nil, err
	}
	return r, nil
}

// CreateTrace opens (truncating) a trace file and returns a recorder
// on it.
func CreateTrace(path string, meta TraceMeta) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	rec, err := NewRecorder(f, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	return rec, nil
}

func (r *Recorder) writeFrame(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("workload: trace encode: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	if _, err := r.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("workload: trace write: %w", err)
	}
	if _, err := r.w.Write(body); err != nil {
		return fmt.Errorf("workload: trace write: %w", err)
	}
	return nil
}

// Record appends one record, assigning its sequence number. The first
// write error sticks: later calls return it without writing, and
// Close reports it.
func (r *Recorder) Record(rec TraceRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.seq++
	rec.Seq = r.seq
	if err := r.writeFrame(&rec); err != nil {
		r.err = err
	}
	return r.err
}

// Close flushes and closes the underlying file if the recorder owns
// one.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ferr := r.w.Flush(); ferr != nil && r.err == nil {
		r.err = ferr
	}
	if r.c != nil {
		if cerr := r.c.Close(); cerr != nil && r.err == nil {
			r.err = cerr
		}
		r.c = nil
	}
	return r.err
}

// ReadTrace parses a trace file into its meta and records. A torn
// final frame is tolerated (the records before it are returned); a
// corrupt frame in the middle — bad CRC with more data following — is
// an error.
func ReadTrace(path string) (TraceMeta, []TraceRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return TraceMeta{}, nil, fmt.Errorf("workload: %w", err)
	}
	return parseTrace(data)
}

func parseTrace(data []byte) (TraceMeta, []TraceRecord, error) {
	var meta TraceMeta
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return meta, nil, errors.New("workload: not a trace file (bad magic)")
	}
	data = data[len(traceMagic):]
	var records []TraceRecord
	first := true
	for len(data) > 0 {
		if len(data) < 8 {
			break // torn tail
		}
		n := binary.BigEndian.Uint32(data[:4])
		want := binary.BigEndian.Uint32(data[4:8])
		if n > maxTraceFrame {
			return meta, nil, fmt.Errorf("workload: trace frame length %d exceeds bound", n)
		}
		if len(data) < 8+int(n) {
			break // torn tail
		}
		body := data[8 : 8+n]
		rest := data[8+int(n):]
		if crc32.Checksum(body, castagnoli) != want {
			if len(rest) == 0 {
				break // torn tail: final frame corrupt
			}
			return meta, nil, fmt.Errorf("workload: trace frame %d: CRC mismatch", len(records)+1)
		}
		if first {
			if err := json.Unmarshal(body, &meta); err != nil {
				return meta, nil, fmt.Errorf("workload: trace meta: %w", err)
			}
			first = false
		} else {
			var rec TraceRecord
			if err := json.Unmarshal(body, &rec); err != nil {
				return meta, nil, fmt.Errorf("workload: trace record %d: %w", len(records)+1, err)
			}
			records = append(records, rec)
		}
		data = rest
	}
	if first {
		return meta, nil, errors.New("workload: trace has no meta frame")
	}
	return meta, records, nil
}

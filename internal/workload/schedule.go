package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Target is one stored media object a schedule can read from or
// derive against.
type Target struct {
	Name     string `json:"name"`
	Elements int    `json:"elements"`
}

// Inventory is the deterministic view of the catalog a schedule is
// generated against: every object name (point reads) and the media
// targets with at least two elements (payload reads, cuts, batches).
// Both slices are sorted so the same catalog always yields the same
// inventory regardless of listing order.
type Inventory struct {
	Names []string `json:"names"`
	Media []Target `json:"media"`
	// Seq is the newest committed journal sequence at inventory time —
	// the upper bound asof ops draw their as_of= targets from. Zero
	// means "unknown": asof ops then pin sequence 1.
	Seq uint64 `json:"seq,omitempty"`
}

// NewInventory sorts and validates the raw listing into an Inventory.
func NewInventory(names []string, media []Target) (*Inventory, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("workload: empty inventory")
	}
	inv := &Inventory{Names: append([]string(nil), names...), Media: append([]Target(nil), media...)}
	sort.Strings(inv.Names)
	sort.Slice(inv.Media, func(i, j int) bool { return inv.Media[i].Name < inv.Media[j].Name })
	return inv, nil
}

// Item is one scheduled request. Path carries the full request target
// including query parameters; Body is non-nil only for POSTs.
type Item struct {
	AtNs   int64  `json:"at_ns"`
	Group  int    `json:"group"`
	Client int    `json:"client"`
	Op     string `json:"op"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   []byte `json:"body,omitempty"`
}

// Schedule is the fully materialized request program of one
// (spec, seed, inventory) triple, sorted by dispatch time.
type Schedule struct {
	SpecHash string `json:"spec_hash"`
	Seed     int64  `json:"seed"`
	Items    []Item `json:"items"`
}

// clientSeed derives an independent PRNG stream per (group, client)
// from the run seed, so adding a client to one group never perturbs
// another group's draws.
func clientSeed(seed int64, group, client int) int64 {
	r := NewRNG(seed ^ int64(group+1)<<32 ^ int64(client+1))
	return int64(r.Uint64())
}

// Generate materializes the request schedule for spec under seed
// against inv. The result is byte-identical across runs: same
// (spec, seed, inventory) → same Encode() bytes.
func Generate(spec *Spec, seed int64, inv *Inventory) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	needsMedia := false
	for _, g := range spec.Groups {
		for _, op := range knownOps {
			if op != "object" && op != "asof" && g.Mix[op] > 0 {
				needsMedia = true
			}
		}
	}
	if needsMedia && len(inv.Media) == 0 {
		return nil, fmt.Errorf("workload: spec %q needs media targets but the inventory has none", spec.Name)
	}
	horizon := time.Duration(spec.DurationSec * float64(time.Second))
	sched := &Schedule{SpecHash: spec.Hash(), Seed: seed}
	for gi, g := range spec.Groups {
		for ci := 0; ci < g.Clients; ci++ {
			rng := NewRNG(clientSeed(seed, gi, ci))
			mutSeq := 0
			for _, at := range arrivals(rng, g.Arrival, g.Diurnal, horizon) {
				op := pickOp(rng, g.Mix)
				item := Item{AtNs: int64(at), Group: gi, Client: ci, Op: op}
				buildRequest(rng, &item, inv, seed, &mutSeq)
				sched.Items = append(sched.Items, item)
			}
		}
	}
	// One global dispatch order; ties broken by (group, client) so the
	// sort is total and the encoding stable.
	sort.SliceStable(sched.Items, func(i, j int) bool {
		a, b := sched.Items[i], sched.Items[j]
		if a.AtNs != b.AtNs {
			return a.AtNs < b.AtNs
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Client < b.Client
	})
	return sched, nil
}

// pickOp draws from the weighted mix, iterating ops in the fixed
// knownOps order so the draw is deterministic.
func pickOp(rng *RNG, mix map[string]int) string {
	total := 0
	for _, w := range mix {
		total += w
	}
	n := rng.Intn(total)
	for _, op := range knownOps {
		n -= mix[op]
		if n < 0 {
			return op
		}
	}
	return knownOps[0]
}

// buildRequest fills the HTTP request of one drawn operation.
// Mutation names embed (seed, group, client, seq) so concurrent
// clients and repeated runs never collide, yet the names are fully
// deterministic.
func buildRequest(rng *RNG, item *Item, inv *Inventory, seed int64, mutSeq *int) {
	item.Method = http.MethodGet
	switch item.Op {
	case "object":
		item.Path = "/v1/objects/" + inv.Names[rng.Intn(len(inv.Names))]
	case "expand":
		item.Path = "/v1/objects/" + inv.Media[rng.Intn(len(inv.Media))].Name + "/expand"
	case "element":
		t := inv.Media[rng.Intn(len(inv.Media))]
		item.Path = fmt.Sprintf("/v1/objects/%s/element/%d", t.Name, rng.Intn(t.Elements))
	case "cut":
		t := inv.Media[rng.Intn(len(inv.Media))]
		from := rng.Intn(t.Elements - 1)
		to := from + 1 + rng.Intn(t.Elements-from-1)
		*mutSeq++
		out := fmt.Sprintf("w%d-g%dc%d-%d", seed, item.Group, item.Client, *mutSeq)
		item.Method = http.MethodPost
		item.Path = fmt.Sprintf("/v1/objects/%s/cut?out=%s&from=%d&to=%d", t.Name, out, from, to)
	case "batch":
		t := inv.Media[rng.Intn(len(inv.Media))]
		type batchItem struct {
			Name       string          `json:"name"`
			Op         string          `json:"op"`
			InputNames []string        `json:"input_names"`
			Params     json.RawMessage `json:"params"`
		}
		n := 2 + rng.Intn(3)
		items := make([]batchItem, n)
		for k := range items {
			*mutSeq++
			from := rng.Intn(t.Elements - 1)
			items[k] = batchItem{
				Name:       fmt.Sprintf("w%d-g%dc%d-%d", seed, item.Group, item.Client, *mutSeq),
				Op:         "video-edit",
				InputNames: []string{t.Name},
				Params: json.RawMessage(fmt.Sprintf(
					`{"entries":[{"input":0,"from":%d,"to":%d}]}`, from, from+1)),
			}
		}
		body, _ := json.Marshal(map[string]any{"items": items})
		item.Method = http.MethodPost
		item.Path = "/v1/objects:batch"
		item.Body = body
	case "query":
		switch rng.Intn(4) {
		case 0:
			item.Path = "/v1/query?kind=video&limit=50"
		case 1:
			item.Path = "/v1/query?derived_from=" + inv.Media[rng.Intn(len(inv.Media))].Name + "&limit=50"
		case 2:
			item.Path = fmt.Sprintf("/v1/query?live_at=%.3f&limit=50", rng.Float64()*10)
		default:
			t1 := rng.Float64() * 8
			item.Path = fmt.Sprintf("/v1/query?overlaps=%.3f,%.3f&limit=50", t1, t1+2)
		}
	case "pquery":
		// Epoch-pinned pagination: the executor fetches this first page,
		// reads the epoch from the response, and walks the remaining
		// pages with an epoch= pin — exercising the retention ring under
		// a mutating workload.
		item.Path = fmt.Sprintf("/v1/query?kind=video&limit=%d&offset=0", 2+rng.Intn(6))
	case "asof":
		// Transaction-time reads at a sequence drawn in [1, inv.Seq].
		// A sequence below the retention floor answers 410 version_gone
		// and a name absent at that sequence answers 404 — both are
		// deterministic policy outcomes of the draw, not failures (the
		// executor counts them as successes for asof ops).
		maxSeq := inv.Seq
		if maxSeq == 0 {
			maxSeq = 1
		}
		at := 1 + uint64(rng.Intn(int(maxSeq)))
		switch rng.Intn(3) {
		case 0:
			item.Path = fmt.Sprintf("/v1/query?kind=video&as_of=%d&limit=50", at)
		case 1:
			item.Path = fmt.Sprintf("/v1/query?live_at=%.3f&as_of=%d&limit=50", rng.Float64()*10, at)
		default:
			item.Path = fmt.Sprintf("/v1/objects/%s?as_of=%d", inv.Names[rng.Intn(len(inv.Names))], at)
		}
	}
}

// Encode renders the schedule as canonical JSON lines: one header
// line (spec hash, seed), then one line per item. Byte-identical
// encodes mean identical schedules; the determinism lane diffs these
// bytes directly.
func (s *Schedule) Encode() []byte {
	var buf bytes.Buffer
	hdr, _ := json.Marshal(struct {
		SpecHash string `json:"spec_hash"`
		Seed     int64  `json:"seed"`
		Items    int    `json:"items"`
	}{s.SpecHash, s.Seed, len(s.Items)})
	buf.Write(hdr)
	buf.WriteByte('\n')
	for i := range s.Items {
		line, _ := json.Marshal(&s.Items[i])
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Hash is the hex SHA-256 of Encode — the schedule fingerprint
// reports embed next to the spec hash.
func (s *Schedule) Hash() string {
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:])
}

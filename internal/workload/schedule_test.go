package workload

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func testInventory(t *testing.T) *Inventory {
	t.Helper()
	inv, err := NewInventory(
		[]string{"clipB", "clipA", "title"},
		[]Target{{Name: "clipB", Elements: 24}, {Name: "clipA", Elements: 16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	inv.Seq = 9
	return inv
}

// allOpsSpec draws every schedulable op, across two groups with
// different arrival processes and a diurnal curve, so Generate's whole
// surface is exercised.
func allOpsSpec() *Spec {
	return &Spec{
		Name:        "all-ops",
		DurationSec: 3,
		Groups: []Group{
			{
				Name: "readers", Clients: 3,
				Arrival: Arrival{Process: "poisson", Rate: 30},
				Diurnal: &Diurnal{Amplitude: 0.6, PeriodSec: 3},
				Mix:     map[string]int{"object": 3, "expand": 2, "element": 3, "query": 2, "pquery": 1, "asof": 2},
			},
			{
				Name: "editors", Clients: 2,
				Arrival: Arrival{Process: "gamma", Rate: 10, Shape: 0.5},
				Mix:     map[string]int{"cut": 2, "batch": 1},
			},
		},
	}
}

// TestScheduleDeterminism is the determinism property the whole
// harness rests on: the same (spec, seed, inventory) triple must
// materialize to byte-identical schedules, and a different seed must
// not.
func TestScheduleDeterminism(t *testing.T) {
	spec, inv := allOpsSpec(), testInventory(t)
	s1, err := Generate(spec, 42, inv)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(spec, 42, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Encode(), s2.Encode()) {
		t.Fatal("same (spec, seed, inventory) produced different schedule bytes")
	}
	if s1.Hash() != s2.Hash() {
		t.Fatal("same schedule, different hash")
	}
	s3, err := Generate(spec, 43, inv)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1.Encode(), s3.Encode()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(s1.Items) == 0 {
		t.Fatal("empty schedule")
	}
}

func TestScheduleShape(t *testing.T) {
	spec, inv := allOpsSpec(), testInventory(t)
	sched, err := Generate(spec, 7, inv)
	if err != nil {
		t.Fatal(err)
	}
	horizon := int64(spec.DurationSec * float64(time.Second))
	ops := map[string]int{}
	var prev int64 = -1
	for _, it := range sched.Items {
		if it.AtNs < prev {
			t.Fatal("schedule not sorted by dispatch time")
		}
		prev = it.AtNs
		if it.AtNs < 0 || it.AtNs >= horizon {
			t.Errorf("item at %dns outside [0, %d)", it.AtNs, horizon)
		}
		ops[it.Op]++
		switch it.Op {
		case "cut", "batch":
			if it.Method != "POST" {
				t.Errorf("%s method = %s", it.Op, it.Method)
			}
		default:
			if it.Method != "GET" {
				t.Errorf("%s method = %s", it.Op, it.Method)
			}
		}
		if it.Op == "batch" && len(it.Body) == 0 {
			t.Error("batch item has no body")
		}
	}
	for _, op := range knownOps {
		if ops[op] == 0 {
			t.Errorf("op %q never scheduled (got %v)", op, ops)
		}
	}
	if sched.SpecHash != spec.Hash() {
		t.Error("schedule does not carry the spec hash")
	}
}

func TestGenerateNeedsMedia(t *testing.T) {
	spec := validSpec()
	spec.Groups[0].Mix = map[string]int{"cut": 1}
	inv, err := NewInventory([]string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(spec, 1, inv); err == nil {
		t.Error("media-needing spec accepted against empty media inventory")
	}
	bad := validSpec()
	bad.DurationSec = 0
	if _, err := Generate(bad, 1, inv); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestNewInventoryEmpty(t *testing.T) {
	if _, err := NewInventory(nil, nil); err == nil {
		t.Error("empty inventory accepted")
	}
	inv, err := NewInventory([]string{"b", "a"}, []Target{{Name: "z", Elements: 4}, {Name: "a", Elements: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Names[0] != "a" || inv.Media[0].Name != "a" {
		t.Errorf("inventory not sorted: %+v", inv)
	}
}

func TestArrivalProcesses(t *testing.T) {
	horizon := 10 * time.Second
	// Uniform is a metronome: exact 1/rate spacing, last tick before
	// the horizon (t = 10s itself is excluded).
	u := arrivals(NewRNG(1), Arrival{Process: "uniform", Rate: 4}, nil, horizon)
	if len(u) != 39 {
		t.Errorf("uniform arrivals = %d, want 39", len(u))
	}
	for i := 1; i < len(u); i++ {
		if gap := u[i] - u[i-1]; gap != 250*time.Millisecond {
			t.Fatalf("uniform gap = %v", gap)
		}
	}
	// Poisson: count within a few standard deviations of rate*horizon.
	p := arrivals(NewRNG(2), Arrival{Process: "poisson", Rate: 50}, nil, horizon)
	if n := float64(len(p)); math.Abs(n-500) > 5*math.Sqrt(500) {
		t.Errorf("poisson arrivals = %d, want ~500", len(p))
	}
	// Gamma at the same mean rate keeps roughly the same count but
	// with heavier clustering.
	g := arrivals(NewRNG(3), Arrival{Process: "gamma", Rate: 50, Shape: 0.5}, nil, horizon)
	if n := float64(len(g)); math.Abs(n-500) > 150 {
		t.Errorf("gamma arrivals = %d, want ~500", len(g))
	}
	// Diurnal thinning: candidates generated at peak rate, kept with
	// probability rate(t)/peak — the mean over a full period is the
	// base rate, the draws stay a pure function of the seed, and every
	// arrival stays inside the horizon.
	shaped := Arrival{Process: "poisson", Rate: 50}
	curve := &Diurnal{Amplitude: 1, PeriodSec: 10}
	d := arrivals(NewRNG(2), shaped, curve, horizon)
	if n := float64(len(d)); math.Abs(n-500) > 150 {
		t.Errorf("diurnal arrivals = %d, want ~500", len(d))
	}
	for _, at := range d {
		if at < 0 || at >= horizon {
			t.Fatalf("arrival %v outside horizon", at)
		}
	}
	d2 := arrivals(NewRNG(2), shaped, curve, horizon)
	if len(d) != len(d2) {
		t.Error("diurnal thinning broke arrival determinism")
	}
	for i := range d {
		if d[i] != d2[i] {
			t.Fatal("diurnal thinning broke arrival determinism")
		}
	}
}

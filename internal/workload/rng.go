// Package workload is the deterministic simulation-and-replay layer:
// seeded workload specifications with realistic arrival processes,
// byte-stable request schedules, a framed capture-trace format, a
// replay engine that asserts response equivalence against a rebuilt
// catalog, and multi-objective policy scoring.
//
// Everything downstream of a (spec, seed) pair is a pure function of
// it: the same pair yields a byte-identical request schedule, and the
// same trace replayed against an identically seeded catalog yields a
// byte-identical replay report. That property is what turns
// performance comparisons between policies (WAL batch window, cache
// admission, shed thresholds) into reproducible numbers instead of
// anecdotes, and it is asserted in CI (see scripts/replay_determinism.sh).
package workload

import "math"

// RNG is a small, explicit PRNG (splitmix64) owned by this package so
// schedule generation never depends on math/rand's cross-version
// stability. splitmix64 passes BigCrush, is trivially seekable, and —
// most importantly here — its output for a given seed is fixed by
// this file alone.
type RNG struct{ state uint64 }

// NewRNG returns a generator whose entire future output is determined
// by seed.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Uint64 advances the generator.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	// Modulo bias is ~n/2^64 — irrelevant for workload shaping, and
	// avoiding it would cost a rejection loop whose draw count depends
	// on n, complicating cross-run stream alignment.
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential draw with the given rate (mean 1/rate) —
// the inter-arrival law of a Poisson process.
func (r *RNG) Exp(rate float64) float64 {
	// 1-U keeps the argument in (0, 1] so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Norm returns a standard normal draw via Box-Muller. Unlike
// ziggurat-style samplers it consumes a fixed two uniforms per call,
// which keeps the stream alignment of everything drawn after it
// independent of the values drawn.
func (r *RNG) Norm() float64 {
	u := 1 - r.Float64() // (0, 1]
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Gamma returns a draw from Gamma(shape, scale) using
// Marsaglia-Tsang squeeze for shape >= 1 and the Ahrens-Dieter style
// boost for shape < 1. Rejection loops consume a variable number of
// draws, but the consumption is itself a deterministic function of
// the stream, so reproducibility holds.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("workload: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := 1 - r.Float64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
)

// Response equivalence is asserted modulo volatile fields: values
// that legitimately differ between a recorded run and a replay of the
// same logical state. Object IDs are allocation-order artifacts,
// epochs are commit-count artifacts, and error messages are
// explicitly non-contractual (errors.go: clients switch on codes, the
// wording may change and often embeds an id or epoch number). The
// stable surface — names, structure, payload bytes, error codes —
// is what the digest covers.

// volatileKeys are JSON object keys dropped (at any nesting depth)
// before digesting.
var volatileKeys = map[string]bool{
	"epoch":      true,
	"id":         true,
	"request_id": true,
}

// BodyDigest returns the hex SHA-256 of a response body, normalized
// when the body is JSON: volatile keys are dropped recursively, an
// error envelope keeps only its code, and the result is re-marshaled
// canonically (encoding/json sorts object keys). Non-JSON bodies
// (element payloads, streams) digest their raw bytes.
func BodyDigest(contentType string, body []byte) string {
	if strings.HasPrefix(contentType, "application/json") {
		if norm, ok := normalizeJSON(body); ok {
			body = norm
		}
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// ErrCodeFromBody extracts the stable code from a JSON error
// envelope ({"error":{"code":...}}), or "" when the body is not one.
func ErrCodeFromBody(body []byte) string {
	if !strings.Contains(string(body), `"error"`) {
		return ""
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) != nil {
		return ""
	}
	return env.Error.Code
}

// normalizeJSON parses, scrubs and canonically re-marshals a JSON
// body. ok=false means the body did not parse (digest the raw bytes
// instead — a mangled body should still compare equal to an equally
// mangled one and unequal to anything else).
func normalizeJSON(body []byte) ([]byte, bool) {
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, false
	}
	v = scrub(v)
	out, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return out, true
}

// scrub walks the decoded value dropping volatile keys and reducing
// error envelopes to their stable code.
func scrub(v any) any {
	switch t := v.(type) {
	case map[string]any:
		// {"error":{"code":...,"message":...}} → keep the code only.
		if e, ok := t["error"].(map[string]any); ok && len(t) == 1 {
			if code, ok := e["code"]; ok {
				return map[string]any{"error": map[string]any{"code": code}}
			}
		}
		out := make(map[string]any, len(t))
		for k, val := range t {
			if volatileKeys[k] {
				continue
			}
			out[k] = scrub(val)
		}
		return out
	case []any:
		for i := range t {
			t[i] = scrub(t[i])
		}
		return t
	default:
		return v
	}
}

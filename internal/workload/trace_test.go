package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeTestTrace(t *testing.T, path string, meta TraceMeta, recs []TraceRecord) {
	t.Helper()
	rec, err := CreateTrace(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := rec.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	in := []TraceRecord{
		{Method: "GET", Path: "/v1/objects/a", RouteName: "object", Status: 200, Digest: "d1", Epoch: 3, LatencyNs: 1000},
		{Method: "POST", Path: "/v1/objects:batch", Body: []byte(`{"items":[]}`), Status: 201, Digest: "d2", LatencyNs: 2000},
		{Method: "GET", Path: "/v1/objects/x", Status: 503, ErrCode: "overloaded", Shed: true, LatencyNs: 10},
	}
	writeTestTrace(t, path, TraceMeta{Objects: 5, Seq: 9, Epoch: 4}, in)

	meta, out, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta != (TraceMeta{Objects: 5, Seq: 9, Epoch: 4}) {
		t.Errorf("meta = %+v", meta)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		want.Seq = uint64(i + 1) // Recorder assigns completion order
		got := out[i]
		if got.Method != want.Method || got.Path != want.Path || got.Status != want.Status ||
			got.Digest != want.Digest || got.ErrCode != want.ErrCode ||
			got.Epoch != want.Epoch || got.Shed != want.Shed ||
			got.Seq != want.Seq || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestTraceTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	writeTestTrace(t, path, TraceMeta{Objects: 1}, []TraceRecord{
		{Method: "GET", Path: "/a", Status: 200},
		{Method: "GET", Path: "/b", Status: 200},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn final frame: the records before
	// it must still parse.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("got %d records before the tear, want 1", len(recs))
	}
}

func TestTraceCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	writeTestTrace(t, path, TraceMeta{}, []TraceRecord{
		{Method: "GET", Path: "/aaaaaaaaaa", Status: 200},
		{Method: "GET", Path: "/bbbbbbbbbb", Status: 200},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle: corruption with more data following
	// is damage, not a tear, and must be an error.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadTrace(path); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

func TestTraceBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.trc")
	os.WriteFile(path, []byte("this is not a trace file at all"), 0o644)
	if _, _, err := ReadTrace(path); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadTrace(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRecorderStickyError(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(f, TraceMeta{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Push enough records through the 64 KiB buffer to force a flush
	// onto the closed file; from then on every call reports the error.
	var firstErr error
	for i := 0; i < 5000 && firstErr == nil; i++ {
		firstErr = rec.Record(TraceRecord{Method: "GET", Path: "/some/long/enough/path", Status: 200})
	}
	if firstErr == nil {
		t.Fatal("writes to a closed file never failed")
	}
	if err := rec.Record(TraceRecord{}); err == nil {
		t.Error("record after failure succeeded")
	}
	if err := rec.Close(); err == nil {
		t.Error("close after failure reported success")
	}
}

func TestCreateTraceBadPath(t *testing.T) {
	if _, err := CreateTrace(filepath.Join(t.TempDir(), "no", "such", "dir", "t.trc"), TraceMeta{}); err == nil {
		t.Error("create into missing directory succeeded")
	}
}

package workload

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d/100 equal draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		n := r.Intn(7)
		if n < 0 || n >= 7 {
			t.Fatalf("Intn(7) = %d", n)
		}
		seen[n] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d of 7 values", len(seen))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n, rate = 200000, 4.0
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatalf("Exp() = %v negative", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGGammaMean(t *testing.T) {
	// E[Gamma(shape, scale)] = shape*scale; check a bursty shape (<1,
	// exercising the boost path) and a smooth one (>1).
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {3, 0.5}} {
		r := NewRNG(17)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) = %v negative", tc.shape, tc.scale, x)
			}
			sum += x
		}
		mean, want := sum/n, tc.shape*tc.scale
		if math.Abs(mean-want)/want > 0.03 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, want)
		}
	}
}

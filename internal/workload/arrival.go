package workload

import (
	"math"
	"time"
)

// arrivals generates one client's arrival offsets over [0, horizon)
// from its group's process and optional diurnal shaping. The draws
// come exclusively from rng, so the result is a pure function of the
// generator's seed.
//
// Diurnal shaping uses thinning (Lewis-Shedler): arrivals are
// generated at the peak rate base*(1+amplitude) and each is kept with
// probability rate(t)/peak. Thinning preserves determinism — every
// candidate consumes exactly one extra uniform — and is exact for any
// bounded rate function, unlike time-warping approximations.
func arrivals(rng *RNG, a Arrival, d *Diurnal, horizon time.Duration) []time.Duration {
	h := horizon.Seconds()
	peak := a.Rate
	if d != nil {
		peak = a.Rate * (1 + d.Amplitude)
	}
	shape := a.Shape
	if shape == 0 {
		shape = 0.5
	}
	var out []time.Duration
	t := 0.0
	for {
		var gap float64
		switch a.Process {
		case "poisson":
			gap = rng.Exp(peak)
		case "gamma":
			// Mean gap 1/peak: Gamma(k, 1/(peak*k)) has mean 1/peak
			// with burstiness controlled by k.
			gap = rng.Gamma(shape, 1/(peak*shape))
		default: // "uniform"
			gap = 1 / peak
		}
		t += gap
		if t >= h {
			return out
		}
		if d != nil {
			period := d.PeriodSec
			if period == 0 {
				period = h
			}
			rate := a.Rate * (1 + d.Amplitude*math.Sin(2*math.Pi*t/period+d.PhaseRad))
			if rng.Float64()*peak >= rate {
				continue // thinned out
			}
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Spec describes a simulated workload: one or more client groups,
// each with its own arrival process, optional diurnal rate shaping,
// and weighted operation mix. A Spec plus a seed fully determines a
// request schedule (see Generate).
type Spec struct {
	// Name labels the spec in reports and BENCH artifacts.
	Name string `json:"name"`
	// DurationSec is the schedule horizon in seconds: arrivals are
	// generated in [0, DurationSec).
	DurationSec float64 `json:"duration_sec"`
	// Groups are the client populations. Group order is significant:
	// each (group, client) pair derives its own PRNG stream from the
	// run seed, so reordering groups changes the schedule.
	Groups []Group `json:"groups"`
}

// Group is a homogeneous client population.
type Group struct {
	// Name labels the group ("readers", "editors", ...).
	Name string `json:"name"`
	// Clients is how many independent clients the group simulates.
	Clients int `json:"clients"`
	// Arrival is the per-client inter-arrival process.
	Arrival Arrival `json:"arrival"`
	// Diurnal optionally shapes the arrival rate over the schedule
	// horizon.
	Diurnal *Diurnal `json:"diurnal,omitempty"`
	// Mix is the weighted operation mix, op name → weight. Known ops:
	// object, expand, element, cut, batch, query, pquery (epoch-pinned
	// two-page query), asof (transaction-time as_of= read at a drawn
	// journal sequence).
	Mix map[string]int `json:"mix"`
}

// Arrival selects and parameterizes an inter-arrival process.
type Arrival struct {
	// Process is "poisson", "gamma" or "uniform".
	//
	//   poisson: exponential inter-arrivals at Rate req/s — the
	//            memoryless open-loop baseline.
	//   gamma:   Gamma(Shape, 1/(Rate*Shape)) inter-arrivals; Shape<1
	//            produces bursts (heavy clustering at the same mean
	//            rate), Shape>1 smooths toward a pacemaker.
	//   uniform: fixed 1/Rate spacing — a metronome, useful for
	//            minimal-variance regression lanes.
	Process string `json:"process"`
	// Rate is the mean arrival rate in requests/second per client.
	Rate float64 `json:"rate"`
	// Shape is the gamma shape parameter (gamma only; default 0.5).
	Shape float64 `json:"shape,omitempty"`
}

// Diurnal shapes the instantaneous arrival rate as
//
//	rate(t) = base * (1 + Amplitude * sin(2*pi*t/PeriodSec + PhaseRad))
//
// implemented by thinning, so the draw sequence stays deterministic.
// Amplitude must be in [0, 1]; PeriodSec defaults to the schedule
// horizon (one full day-cycle per run).
type Diurnal struct {
	Amplitude float64 `json:"amplitude"`
	PeriodSec float64 `json:"period_sec,omitempty"`
	PhaseRad  float64 `json:"phase_rad,omitempty"`
}

// knownOps is the closed set of schedulable operations, in the fixed
// order weighted draws iterate (the order is part of the
// deterministic contract).
var knownOps = []string{"object", "expand", "element", "cut", "batch", "query", "pquery", "asof"}

// mutatingOps are the ops that create objects; they need media
// targets with at least two elements.
func isKnownOp(op string) bool {
	for _, k := range knownOps {
		if k == op {
			return true
		}
	}
	return false
}

// Validate checks the spec's structural invariants.
func (s *Spec) Validate() error {
	if s.DurationSec <= 0 {
		return fmt.Errorf("workload: spec %q: duration_sec must be positive", s.Name)
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("workload: spec %q: no client groups", s.Name)
	}
	for gi, g := range s.Groups {
		if g.Clients <= 0 {
			return fmt.Errorf("workload: group %d (%s): clients must be positive", gi, g.Name)
		}
		switch g.Arrival.Process {
		case "poisson", "uniform":
		case "gamma":
			if g.Arrival.Shape < 0 {
				return fmt.Errorf("workload: group %d (%s): negative gamma shape", gi, g.Name)
			}
		default:
			return fmt.Errorf("workload: group %d (%s): unknown arrival process %q", gi, g.Name, g.Arrival.Process)
		}
		if g.Arrival.Rate <= 0 {
			return fmt.Errorf("workload: group %d (%s): arrival rate must be positive", gi, g.Name)
		}
		if d := g.Diurnal; d != nil {
			if d.Amplitude < 0 || d.Amplitude > 1 {
				return fmt.Errorf("workload: group %d (%s): diurnal amplitude must be in [0,1]", gi, g.Name)
			}
			if d.PeriodSec < 0 {
				return fmt.Errorf("workload: group %d (%s): negative diurnal period", gi, g.Name)
			}
		}
		total := 0
		for op, w := range g.Mix {
			if !isKnownOp(op) {
				return fmt.Errorf("workload: group %d (%s): unknown op %q (want one of %s)",
					gi, g.Name, op, strings.Join(knownOps, "|"))
			}
			if w < 0 {
				return fmt.Errorf("workload: group %d (%s): negative weight for %q", gi, g.Name, op)
			}
			total += w
		}
		if total == 0 {
			return fmt.Errorf("workload: group %d (%s): mix has zero total weight", gi, g.Name)
		}
	}
	return nil
}

// Canonical returns the spec's canonical JSON encoding: fixed field
// order, map keys sorted (encoding/json sorts map keys), no
// insignificant whitespace. Two specs with equal canonical bytes are
// the same workload.
func (s *Spec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic("workload: canonical encode: " + err.Error())
	}
	return b
}

// Hash is the hex SHA-256 of the canonical encoding — the spec
// fingerprint embedded in every report and BENCH artifact.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// LoadSpec reads and validates a spec from a JSON file. Unknown
// fields are rejected so a typo'd knob fails loudly instead of
// silently running the default.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// MixSpec converts tbmload's legacy closed-loop parameters into a
// one-group Spec so even legacy bench reports carry a spec hash.
func MixSpec(name string, clients int, duration time.Duration, mix map[string]int) *Spec {
	ops := make(map[string]int, len(mix))
	keys := make([]string, 0, len(mix))
	for op := range mix {
		keys = append(keys, op)
	}
	sort.Strings(keys)
	for _, op := range keys {
		ops[op] = mix[op]
	}
	return &Spec{
		Name:        name,
		DurationSec: duration.Seconds(),
		Groups: []Group{{
			Name:    "closed-loop",
			Clients: clients,
			// Closed-loop mode has no arrival process — clients issue
			// back to back — encoded as a uniform process at a nominal
			// rate so the spec still validates and hashes.
			Arrival: Arrival{Process: "uniform", Rate: 1},
			Mix:     ops,
		}},
	}
}

package workload

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newFakeMedia is a stub of the media server's workload-facing
// surface, just enough for the executor and replayer: object reads,
// mutations, and an epoch-pinned paginated query. pinnedFails makes
// the first n pinned page requests answer 410 epoch_gone, simulating
// retention-ring eviction mid-walk.
func newFakeMedia(objects int, epoch uint64, pinnedFails int) *httptest.Server {
	var mu sync.Mutex
	fails := pinnedFails
	reply := func(w http.ResponseWriter, code int, body string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		io.WriteString(w, body)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/objects", func(w http.ResponseWriter, r *http.Request) {
		reply(w, 200, fmt.Sprintf(`{"objects":[],"total":%d,"epoch":%d}`, objects, epoch))
	})
	mux.HandleFunc("GET /v1/objects/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "missing" {
			reply(w, 404, `{"error":{"code":"not_found","message":"no object `+name+`"}}`)
			return
		}
		reply(w, 200, fmt.Sprintf(`{"name":%q,"id":7,"epoch":%d,"kind":"video"}`, name, epoch))
	})
	mux.HandleFunc("GET /v1/objects/{name}/expand", func(w http.ResponseWriter, r *http.Request) {
		reply(w, 200, fmt.Sprintf(`{"name":%q,"epoch":%d,"tree":{"op":"leaf"}}`, r.PathValue("name"), epoch))
	})
	mux.HandleFunc("GET /v1/objects/{name}/element/{i}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		io.WriteString(w, "payload-"+r.PathValue("i"))
	})
	mux.HandleFunc("POST /v1/objects/{name}/cut", func(w http.ResponseWriter, r *http.Request) {
		reply(w, 201, fmt.Sprintf(`{"name":%q,"id":9,"epoch":%d}`, r.URL.Query().Get("out"), epoch))
	})
	mux.HandleFunc("POST /v1/objects:batch", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if len(body) == 0 {
			reply(w, 400, `{"error":{"code":"bad_request","message":"empty body"}}`)
			return
		}
		reply(w, 201, fmt.Sprintf(`{"created":2,"epoch":%d}`, epoch))
	})
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("epoch") != "" { // pinned follow-up page
			mu.Lock()
			evict := fails > 0
			if evict {
				fails--
			}
			mu.Unlock()
			if evict {
				reply(w, 410, `{"error":{"code":"epoch_gone","message":"epoch evicted"}}`)
				return
			}
			reply(w, 200, fmt.Sprintf(`{"objects":[],"total":4,"epoch":%d}`, epoch))
			return
		}
		if q.Get("offset") != "" { // pquery first page: more follows
			reply(w, 200, fmt.Sprintf(`{"objects":[],"total":4,"epoch":%d,"next_offset":2}`, epoch))
			return
		}
		reply(w, 200, fmt.Sprintf(`{"objects":[],"total":4,"epoch":%d}`, epoch))
	})
	return httptest.NewServer(mux)
}

func TestExecuteDrivesSchedule(t *testing.T) {
	ts := newFakeMedia(3, 5, 1)
	defer ts.Close()
	spec, inv := allOpsSpec(), testInventory(t)
	spec.DurationSec = 0.5
	sched, err := Generate(spec, 21, inv)
	if err != nil {
		t.Fatal(err)
	}
	// TimeScale 50 compresses the half-second horizon to ~10ms of wall
	// clock; the open loop semantics are unchanged.
	res, err := Execute(ts.URL, sched, ExecOptions{TimeScale: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScheduleHash != sched.Hash() {
		t.Error("result does not carry the schedule hash")
	}
	if res.Items != len(sched.Items) {
		t.Errorf("items = %d, want %d", res.Items, len(sched.Items))
	}
	// pquery walks follow-up pages, so ops >= scheduled items.
	if res.TotalOps < len(sched.Items) {
		t.Errorf("total ops = %d < %d items", res.TotalOps, len(sched.Items))
	}
	if res.TotalErrors != 0 {
		t.Errorf("errors = %d against a fully healthy stub", res.TotalErrors)
	}
	if res.ThroughputOps <= 0 || res.Overall.Count != res.TotalOps || res.Overall.P99Ms <= 0 {
		t.Errorf("overall summary = %+v", res.Overall)
	}
	for op, s := range res.Ops {
		if s.Count == 0 {
			t.Errorf("op %q summarized with zero count", op)
		}
	}
}

func TestExecuteCountsFailures(t *testing.T) {
	// A server shedding everything: every op is an error, POSTs and
	// GETs alike, and sheds are counted separately.
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"overloaded","message":"shed"}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spec := validSpec()
	spec.DurationSec = 0.2
	spec.Groups[0].Arrival = Arrival{Process: "uniform", Rate: 50}
	inv, _ := NewInventory([]string{"a"}, nil)
	sched, err := Generate(spec, 3, inv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(ts.URL, sched, ExecOptions{TimeScale: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrors != res.TotalOps || res.TotalShed != res.TotalOps {
		t.Errorf("errors = %d, shed = %d, want both = %d ops", res.TotalErrors, res.TotalShed, res.TotalOps)
	}

	if _, err := Execute(ts.URL, &Schedule{}, ExecOptions{}); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestStripParams(t *testing.T) {
	cases := []struct{ in, out string }{
		{"/v1/query?kind=video&limit=4&offset=0", "/v1/query?kind=video&limit=4"},
		{"/v1/query?offset=2&epoch=9&kind=video", "/v1/query?kind=video"},
		{"/v1/query", "/v1/query"},
	}
	for _, tc := range cases {
		if got := stripParams(tc.in, "offset", "epoch"); got != tc.out {
			t.Errorf("stripParams(%q) = %q, want %q", tc.in, got, tc.out)
		}
	}
}

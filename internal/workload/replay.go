package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"
)

// Replay re-issues a recorded trace, in record order, against a
// catalog rebuilt from the same starting point, and asserts response
// equivalence. The replay is sequential — record order is the only
// order the trace defines — so mutations land deterministically and
// reads see exactly the state the record-time request saw (modulo the
// volatile fields BodyDigest scrubs).
//
// Divergences are classified, not conflated:
//
//   - mismatch: status or normalized digest differs — the signal the
//     harness exists to catch;
//   - epoch_gone: a replayed request answered 410 epoch_gone because
//     the replay-side retention ring evicted the pinned epoch. With a
//     smaller retention setting than record time this is expected and
//     deterministic, so it is counted, never failed;
//   - recorded_shed: the record-time server shed the request before
//     any handler ran. It had no effect to reproduce, so replay skips
//     it and counts it.
//
// The report contains no wall-clock data: two replays of one trace
// against identically seeded catalogs must produce byte-identical
// reports (diffed in CI). Timing lives in the separate ReplayTiming.

// ReplayOptions tune a replay run.
type ReplayOptions struct {
	// Client is the HTTP client to use (default: 30s timeout).
	Client *http.Client
	// MaxMismatchSamples bounds the per-class sample lists in the
	// report (default 16).
	MaxMismatchSamples int
}

// MismatchSample pinpoints one diverging record.
type MismatchSample struct {
	Seq            uint64 `json:"seq"`
	Method         string `json:"method"`
	Path           string `json:"path"`
	RecordedStatus int    `json:"recorded_status"`
	ReplayedStatus int    `json:"replayed_status"`
	RecordedDigest string `json:"recorded_digest"`
	ReplayedDigest string `json:"replayed_digest"`
	ReplayedCode   string `json:"replayed_code,omitempty"`
	Note           string `json:"note,omitempty"`
}

// RouteCounts aggregates replay outcomes per route.
type RouteCounts struct {
	Replayed   int `json:"replayed"`
	Matches    int `json:"matches"`
	Mismatches int `json:"mismatches"`
	EpochGone  int `json:"epoch_gone"`
	Shed       int `json:"recorded_shed"`
}

// ReplayReport is the deterministic artifact of one replay.
type ReplayReport struct {
	Tool        string    `json:"tool"`
	TraceDigest string    `json:"trace_digest"`
	Meta        TraceMeta `json:"meta"`
	// InitialObjects is the replay-side catalog size before the first
	// record; InitialMatch is whether it equals the recorded Meta.
	InitialObjects int  `json:"initial_objects"`
	InitialMatch   bool `json:"initial_match"`

	Records      int `json:"records"`
	Replayed     int `json:"replayed"`
	Matches      int `json:"matches"`
	Mismatches   int `json:"mismatches"`
	EpochGone    int `json:"epoch_gone"`
	RecordedShed int `json:"recorded_shed"`
	// TransportErrors counts requests that failed before any response
	// (connection refused, timeout); they are also mismatches.
	TransportErrors int `json:"transport_errors"`

	Routes          map[string]*RouteCounts `json:"routes"`
	MismatchSamples []MismatchSample        `json:"mismatch_samples,omitempty"`
	Equivalent      bool                    `json:"equivalent"`
}

// ReplayTiming is the wall-clock sidecar: useful for eyeballing a
// replay, deliberately excluded from the deterministic report.
type ReplayTiming struct {
	ElapsedSec    float64 `json:"elapsed_sec"`
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// TraceFileDigest is the hex SHA-256 of the raw trace file, embedded
// in the report so a report unambiguously names its input.
func TraceFileDigest(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("workload: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Replay runs the trace against base and builds the report.
func Replay(base string, meta TraceMeta, records []TraceRecord, traceDigest string, opts ReplayOptions) (*ReplayReport, *ReplayTiming, error) {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	maxSamples := opts.MaxMismatchSamples
	if maxSamples == 0 {
		maxSamples = 16
	}
	rep := &ReplayReport{
		Tool:        "tbmload replay",
		TraceDigest: traceDigest,
		Meta:        meta,
		Records:     len(records),
		Routes:      map[string]*RouteCounts{},
	}
	// Verify the rebuilt catalog matches the recorded starting point:
	// same object count before any record is replayed.
	rep.InitialObjects = countObjects(client, base)
	rep.InitialMatch = rep.InitialObjects == meta.Objects

	var lat []time.Duration
	start := time.Now()
	for _, rec := range records {
		rc := rep.Routes[rec.Route()]
		if rc == nil {
			rc = &RouteCounts{}
			rep.Routes[rec.Route()] = rc
		}
		if rec.Shed {
			rep.RecordedShed++
			rc.Shed++
			continue
		}
		rep.Replayed++
		rc.Replayed++
		status, code, digest, d, err := issue(client, base, rec)
		if err != nil {
			rep.TransportErrors++
			rep.Mismatches++
			rc.Mismatches++
			if len(rep.MismatchSamples) < maxSamples {
				rep.MismatchSamples = append(rep.MismatchSamples, MismatchSample{
					Seq: rec.Seq, Method: rec.Method, Path: rec.Path,
					RecordedStatus: rec.Status, RecordedDigest: rec.Digest,
					Note: "transport: " + err.Error(),
				})
			}
			continue
		}
		lat = append(lat, d)
		switch {
		case status == rec.Status && digest == rec.Digest:
			rep.Matches++
			rc.Matches++
		case status == http.StatusGone && code == "epoch_gone":
			// The replay-side retention ring evicted the pinned epoch —
			// a deterministic consequence of replay-side policy, not a
			// correctness failure.
			rep.EpochGone++
			rc.EpochGone++
		default:
			rep.Mismatches++
			rc.Mismatches++
			if len(rep.MismatchSamples) < maxSamples {
				rep.MismatchSamples = append(rep.MismatchSamples, MismatchSample{
					Seq: rec.Seq, Method: rec.Method, Path: rec.Path,
					RecordedStatus: rec.Status, ReplayedStatus: status,
					RecordedDigest: rec.Digest, ReplayedDigest: digest,
					ReplayedCode: code,
				})
			}
		}
	}
	rep.Equivalent = rep.Mismatches == 0 && rep.InitialMatch

	elapsed := time.Since(start)
	timing := &ReplayTiming{ElapsedSec: elapsed.Seconds()}
	if elapsed > 0 {
		timing.ThroughputOps = float64(rep.Replayed) / elapsed.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		timing.P50Ms = float64(lat[len(lat)/2]) / float64(time.Millisecond)
		timing.P99Ms = float64(lat[int(0.99*float64(len(lat)-1))]) / float64(time.Millisecond)
	}
	return rep, timing, nil
}

// Route buckets a record for per-route counts. Shed requests never
// matched a route, so they bucket under "shed".
func (r TraceRecord) Route() string {
	if r.RouteName != "" {
		return r.RouteName
	}
	if r.Shed {
		return "shed"
	}
	return "other"
}

// issue re-sends one recorded request and summarizes the response.
func issue(client *http.Client, base string, rec TraceRecord) (status int, code, digest string, d time.Duration, err error) {
	var req *http.Request
	if len(rec.Body) > 0 {
		req, err = http.NewRequest(rec.Method, base+rec.Path, bytes.NewReader(rec.Body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(rec.Method, base+rec.Path, nil)
	}
	if err != nil {
		return 0, "", "", 0, err
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", "", 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	d = time.Since(start)
	if err != nil {
		return 0, "", "", 0, err
	}
	ct := resp.Header.Get("Content-Type")
	return resp.StatusCode, ErrCodeFromBody(body), BodyDigest(ct, body), d, nil
}

// countObjects asks the server how many objects it holds (the
// paginated list's total), or -1 when the probe fails.
func countObjects(client *http.Client, base string) int {
	resp, err := client.Get(base + "/v1/objects?limit=1")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var reply struct {
		Total int `json:"total"`
	}
	if json.NewDecoder(resp.Body).Decode(&reply) != nil || resp.StatusCode != http.StatusOK {
		return -1
	}
	return reply.Total
}

// EncodeReport renders the report as stable, indented JSON: struct
// field order is fixed and encoding/json sorts the route map, so
// equal reports are byte-equal.
func EncodeReport(rep *ReplayReport) []byte {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic("workload: report encode: " + err.Error())
	}
	return append(out, '\n')
}

package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Policy scoring reduces a candidate policy's measured behavior to a
// single comparable number. Three objectives cover the tradeoffs the
// catalog's knobs move: throughput (ops/s, higher is better), tail
// latency (p99 ms, lower is better) and error rate (shed + 5xx,
// lower is better). Because the objectives live on incomparable
// scales, each is min-max normalized across the sweep's candidates
// before weighting — a fitness is only meaningful relative to the
// sweep it was computed in, which is exactly how a sweep uses it.

// Objectives are one candidate's raw measurements.
type Objectives struct {
	Label         string  `json:"label"`
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	P99Ms         float64 `json:"p99_ms"`
	ErrorRate     float64 `json:"error_rate"`
}

// Weights are the relative importance of each objective; they are
// normalized to sum to 1, so only ratios matter.
type Weights struct {
	Throughput float64 `json:"throughput"`
	P99        float64 `json:"p99"`
	Errors     float64 `json:"errors"`
}

// DefaultWeights: throughput half, tail latency and robustness a
// quarter each.
var DefaultWeights = Weights{Throughput: 0.5, P99: 0.25, Errors: 0.25}

// ParseWeights parses "throughput=0.5,p99=0.25,errors=0.25".
func ParseWeights(s string) (Weights, error) {
	w := Weights{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		var f float64
		if ok {
			_, err := fmt.Sscanf(v, "%g", &f)
			ok = err == nil && f >= 0
		}
		if !ok {
			return w, fmt.Errorf("workload: bad weight %q (want name=value)", part)
		}
		switch k {
		case "throughput":
			w.Throughput = f
		case "p99":
			w.P99 = f
		case "errors":
			w.Errors = f
		default:
			return w, fmt.Errorf("workload: unknown objective %q (want throughput|p99|errors)", k)
		}
	}
	if w.Throughput+w.P99+w.Errors == 0 {
		return w, fmt.Errorf("workload: weights sum to zero")
	}
	return w, nil
}

// Scored is one candidate with its normalized components and final
// fitness.
type Scored struct {
	Objectives
	// Normalized components, each in [0, 1], 1 = best in sweep.
	NormThroughput float64 `json:"norm_throughput"`
	NormP99        float64 `json:"norm_p99"`
	NormErrors     float64 `json:"norm_errors"`
	Fitness        float64 `json:"fitness"`
}

// ScoreSweep scores candidates against each other: min-max normalize
// each objective over the sweep, orient so 1 is always best, then
// weight. Returned in input order; Best gives the winner.
func ScoreSweep(cands []Objectives, w Weights) []Scored {
	total := w.Throughput + w.P99 + w.Errors
	if total <= 0 {
		w, total = DefaultWeights, 1
	}
	minMax := func(get func(Objectives) float64) (lo, hi float64) {
		lo, hi = get(cands[0]), get(cands[0])
		for _, c := range cands[1:] {
			v := get(c)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	// norm maps a value to [0,1] oriented so 1 is always best; a
	// degenerate range (all candidates equal) scores 1 for everyone —
	// the objective cannot distinguish them, so it shouldn't penalize
	// any. Orientation must happen inside the degenerate check: a
	// bare 1-norm flip would turn that 1 into a 0.
	norm := func(v, lo, hi float64, higherBetter bool) float64 {
		if hi == lo {
			return 1
		}
		f := (v - lo) / (hi - lo)
		if !higherBetter {
			f = 1 - f
		}
		return f
	}
	tLo, tHi := minMax(func(o Objectives) float64 { return o.ThroughputOps })
	pLo, pHi := minMax(func(o Objectives) float64 { return o.P99Ms })
	eLo, eHi := minMax(func(o Objectives) float64 { return o.ErrorRate })
	out := make([]Scored, len(cands))
	for i, c := range cands {
		s := Scored{Objectives: c}
		s.NormThroughput = norm(c.ThroughputOps, tLo, tHi, true)
		s.NormP99 = norm(c.P99Ms, pLo, pHi, false)
		s.NormErrors = norm(c.ErrorRate, eLo, eHi, false)
		s.Fitness = (w.Throughput*s.NormThroughput + w.P99*s.NormP99 + w.Errors*s.NormErrors) / total
		out[i] = s
	}
	return out
}

// Best returns the index of the highest-fitness candidate; ties break
// toward the earlier candidate so the result is deterministic.
func Best(scored []Scored) int {
	best := 0
	for i, s := range scored {
		if s.Fitness > scored[best].Fitness {
			best = i
		}
	}
	return best
}

// ObjectivesFromTrace computes a candidate's objectives from its
// recorded trace: throughput over the recorded span, p99 over the
// recorded service times, error rate counting sheds and 5xx
// responses. Scoring straight from the capture trace means the
// numbers describe what the server actually served, not what a client
// harness managed to observe.
func ObjectivesFromTrace(label string, records []TraceRecord) (Objectives, error) {
	if len(records) == 0 {
		return Objectives{}, fmt.Errorf("workload: trace has no records")
	}
	o := Objectives{Label: label}
	var lat []time.Duration
	errors := 0
	minAt, maxEnd := records[0].AtNs, int64(0)
	for _, r := range records {
		if r.AtNs < minAt {
			minAt = r.AtNs
		}
		if end := r.AtNs + r.LatencyNs; end > maxEnd {
			maxEnd = end
		}
		if r.Shed || r.Status >= 500 || r.Status == 0 {
			errors++
		}
		if !r.Shed {
			lat = append(lat, time.Duration(r.LatencyNs))
		}
	}
	if span := maxEnd - minAt; span > 0 {
		o.ThroughputOps = float64(len(records)) / (float64(span) / float64(time.Second))
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		o.P99Ms = float64(lat[int(0.99*float64(len(lat)-1))]) / float64(time.Millisecond)
	}
	o.ErrorRate = float64(errors) / float64(len(records))
	return o, nil
}

package workload

import (
	"math"
	"testing"
)

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("throughput=2,p99=1,errors=1")
	if err != nil {
		t.Fatal(err)
	}
	if w.Throughput != 2 || w.P99 != 1 || w.Errors != 1 {
		t.Errorf("weights = %+v", w)
	}
	for _, bad := range []string{"latency=1", "p99=-1", "p99", "p99=0,errors=0,throughput=0"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) accepted", bad)
		}
	}
}

func TestScoreSweepOrientation(t *testing.T) {
	// Candidate "good" dominates on every objective; it must win under
	// any weighting, and its normalized components must all be 1.
	cands := []Objectives{
		{Label: "good", ThroughputOps: 1000, P99Ms: 5, ErrorRate: 0},
		{Label: "slow", ThroughputOps: 400, P99Ms: 80, ErrorRate: 0.2},
		{Label: "mid", ThroughputOps: 700, P99Ms: 40, ErrorRate: 0.1},
	}
	scored := ScoreSweep(cands, DefaultWeights)
	if len(scored) != 3 {
		t.Fatalf("scored %d candidates", len(scored))
	}
	g := scored[0]
	if g.NormThroughput != 1 || g.NormP99 != 1 || g.NormErrors != 1 || math.Abs(g.Fitness-1) > 1e-9 {
		t.Errorf("dominant candidate scored %+v", g)
	}
	if s := scored[1]; s.NormThroughput != 0 || s.NormP99 != 0 || s.NormErrors != 0 {
		t.Errorf("dominated candidate scored %+v", s)
	}
	if Best(scored) != 0 {
		t.Errorf("Best = %d, want 0", Best(scored))
	}
	// Fitness is monotone in domination: mid sits strictly between.
	if !(scored[1].Fitness < scored[2].Fitness && scored[2].Fitness < scored[0].Fitness) {
		t.Errorf("fitness order broken: %v %v %v",
			scored[1].Fitness, scored[2].Fitness, scored[0].Fitness)
	}
}

func TestScoreSweepDegenerateRange(t *testing.T) {
	// All candidates identical on an objective: that objective cannot
	// discriminate and everyone gets full marks on it.
	cands := []Objectives{
		{Label: "a", ThroughputOps: 500, P99Ms: 10, ErrorRate: 0},
		{Label: "b", ThroughputOps: 600, P99Ms: 10, ErrorRate: 0},
	}
	scored := ScoreSweep(cands, DefaultWeights)
	for _, s := range scored {
		if s.NormP99 != 1 || s.NormErrors != 1 {
			t.Errorf("degenerate objective scored %+v", s)
		}
	}
	if Best(scored) != 1 {
		t.Errorf("Best = %d, want the higher-throughput candidate", Best(scored))
	}
}

func TestObjectivesFromTrace(t *testing.T) {
	ns := int64(1e6)
	records := []TraceRecord{
		{AtNs: 0, LatencyNs: 2 * ns, Status: 200},
		{AtNs: 100 * ns, LatencyNs: 4 * ns, Status: 200},
		{AtNs: 200 * ns, LatencyNs: 8 * ns, Status: 500},
		{AtNs: 300 * ns, LatencyNs: 1 * ns, Status: 503, Shed: true},
	}
	o, err := ObjectivesFromTrace("cand", records)
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "cand" {
		t.Errorf("label = %q", o.Label)
	}
	if o.ErrorRate != 0.5 { // one 5xx + one shed out of four
		t.Errorf("error rate = %v, want 0.5", o.ErrorRate)
	}
	if o.ThroughputOps <= 0 || o.P99Ms <= 0 {
		t.Errorf("objectives = %+v", o)
	}
	if _, err := ObjectivesFromTrace("empty", nil); err == nil {
		t.Error("empty trace accepted")
	}
}

package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validSpec() *Spec {
	return &Spec{
		Name:        "t",
		DurationSec: 2,
		Groups: []Group{{
			Name:    "readers",
			Clients: 2,
			Arrival: Arrival{Process: "poisson", Rate: 10},
			Mix:     map[string]int{"object": 1},
		}},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"zero duration", func(s *Spec) { s.DurationSec = 0 }, "duration_sec"},
		{"no groups", func(s *Spec) { s.Groups = nil }, "no client groups"},
		{"zero clients", func(s *Spec) { s.Groups[0].Clients = 0 }, "clients"},
		{"bad process", func(s *Spec) { s.Groups[0].Arrival.Process = "zipf" }, "unknown arrival process"},
		{"negative gamma shape", func(s *Spec) {
			s.Groups[0].Arrival = Arrival{Process: "gamma", Rate: 1, Shape: -1}
		}, "gamma shape"},
		{"zero rate", func(s *Spec) { s.Groups[0].Arrival.Rate = 0 }, "rate"},
		{"diurnal amplitude", func(s *Spec) { s.Groups[0].Diurnal = &Diurnal{Amplitude: 2} }, "amplitude"},
		{"diurnal period", func(s *Spec) {
			s.Groups[0].Diurnal = &Diurnal{Amplitude: 0.5, PeriodSec: -1}
		}, "period"},
		{"unknown op", func(s *Spec) { s.Groups[0].Mix = map[string]int{"drop-table": 1} }, "unknown op"},
		{"negative weight", func(s *Spec) { s.Groups[0].Mix = map[string]int{"object": -1} }, "negative weight"},
		{"zero mix", func(s *Spec) { s.Groups[0].Mix = map[string]int{"object": 0} }, "zero total weight"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecHashStable(t *testing.T) {
	a, b := validSpec(), validSpec()
	if a.Hash() != b.Hash() {
		t.Error("equal specs hash differently")
	}
	b.Groups[0].Arrival.Rate = 11
	if a.Hash() == b.Hash() {
		t.Error("different specs hash equal")
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
		"name": "smoke", "duration_sec": 1,
		"groups": [{"name": "g", "clients": 1,
			"arrival": {"process": "uniform", "rate": 5},
			"mix": {"object": 1, "query": 1}}]
	}`), 0o644)
	s, err := LoadSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" || len(s.Groups) != 1 {
		t.Errorf("loaded spec = %+v", s)
	}

	// A typo'd knob must fail loudly, not silently run the default.
	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"name": "x", "duration_sec": 1, "groupz": []}`), 0o644)
	if _, err := LoadSpec(typo); err == nil {
		t.Error("unknown field accepted")
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x", "duration_sec": 1, "groups": []}`), 0o644)
	if _, err := LoadSpec(bad); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMixSpec(t *testing.T) {
	mix := map[string]int{"object": 3, "cut": 1}
	s := MixSpec("closed-loop", 4, 10*time.Second, mix)
	if err := s.Validate(); err != nil {
		t.Fatalf("MixSpec produced invalid spec: %v", err)
	}
	if s.Hash() != MixSpec("closed-loop", 4, 10*time.Second, mix).Hash() {
		t.Error("MixSpec hash not stable")
	}
	if s.Groups[0].Clients != 4 || s.DurationSec != 10 {
		t.Errorf("MixSpec = %+v", s)
	}
}

package workload

import "testing"

func TestBodyDigestVolatileFields(t *testing.T) {
	// Two responses for the same logical object, recorded and replayed:
	// the allocation-order id and the commit-count epoch differ, the
	// stable surface does not.
	recorded := []byte(`{"name":"clip","id":17,"epoch":40,"elements":[{"id":3,"dur":1.5}]}`)
	replayed := []byte(`{"epoch":7,"elements":[{"dur":1.5,"id":99}],"id":2,"name":"clip"}`)
	if BodyDigest("application/json", recorded) != BodyDigest("application/json", replayed) {
		t.Error("digests differ on volatile-only changes")
	}
	other := []byte(`{"name":"clip2","id":17,"epoch":40,"elements":[{"id":3,"dur":1.5}]}`)
	if BodyDigest("application/json", recorded) == BodyDigest("application/json", other) {
		t.Error("digests equal despite a real field change")
	}
}

func TestBodyDigestErrorEnvelope(t *testing.T) {
	// Error messages are non-contractual and often embed an epoch or
	// id; equivalence is the code alone.
	a := []byte(`{"error":{"code":"epoch_gone","message":"epoch 40 evicted"}}`)
	b := []byte(`{"error":{"code":"epoch_gone","message":"epoch 7 evicted"}}`)
	if BodyDigest("application/json", a) != BodyDigest("application/json", b) {
		t.Error("error digests differ on message-only changes")
	}
	c := []byte(`{"error":{"code":"not_found","message":"x"}}`)
	if BodyDigest("application/json", a) == BodyDigest("application/json", c) {
		t.Error("different error codes digest equal")
	}
}

func TestBodyDigestNonJSON(t *testing.T) {
	raw := []byte{0x01, 0x02, 0x03}
	if BodyDigest("application/octet-stream", raw) != BodyDigest("application/octet-stream", raw) {
		t.Error("raw digest unstable")
	}
	if BodyDigest("application/octet-stream", raw) == BodyDigest("application/octet-stream", []byte{0x01, 0x02}) {
		t.Error("different raw bodies digest equal")
	}
	// A JSON content type with a mangled body falls back to raw bytes:
	// equal to an equally mangled one, unequal to anything else.
	bad := []byte(`{"truncated":`)
	if BodyDigest("application/json", bad) != BodyDigest("application/json", bad) {
		t.Error("mangled JSON digest unstable")
	}
}

func TestErrCodeFromBody(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{`{"error":{"code":"not_found","message":"no such object"}}`, "not_found"},
		{`{"name":"clip"}`, ""},
		{`not json`, ""},
		{`{"error":"flat string"}`, ""},
	}
	for _, tc := range cases {
		if got := ErrCodeFromBody([]byte(tc.body)); got != tc.want {
			t.Errorf("ErrCodeFromBody(%s) = %q, want %q", tc.body, got, tc.want)
		}
	}
}

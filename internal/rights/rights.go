// Package rights addresses the paper's Conclusion item "Authorization
// and electronic copyright need to be addressed": per-object access
// control and provenance-based attribution over the catalog.
//
// A Ledger records an owner and an ACL per object. GuardedDB wraps a
// catalog so that reading (expanding/playing) and deriving require the
// corresponding permission, and every derived object automatically
// carries the union of its sources' attributions — the "electronic
// copyright" trail the paper asks for, computed from the derivation
// graph rather than asserted by hand.
package rights

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
)

// Permission bits.
type Permission int

// Permissions.
const (
	// PermRead allows expanding and playing the object.
	PermRead Permission = 1 << iota
	// PermDerive allows using the object as a derivation input or
	// composition component.
	PermDerive
)

// Errors.
var (
	ErrDenied    = errors.New("rights: permission denied")
	ErrNoRecord  = errors.New("rights: object has no rights record")
	ErrDupRecord = errors.New("rights: object already registered")
)

// Record holds one object's rights.
type Record struct {
	// Owner is the principal that registered the object; owners hold
	// all permissions implicitly.
	Owner string
	// ACL maps principal → permission bits.
	ACL map[string]Permission
	// Attribution lists the credited rights holders, accumulated
	// through derivation.
	Attribution []string
}

// Ledger stores rights records. Safe for concurrent use.
type Ledger struct {
	mu      sync.RWMutex
	records map[core.ID]*Record
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{records: map[core.ID]*Record{}}
}

// Register creates the rights record for an object: owner plus initial
// attribution (defaults to the owner).
func (l *Ledger) Register(id core.ID, owner string, attribution ...string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.records[id]; dup {
		return fmt.Errorf("%w: %v", ErrDupRecord, id)
	}
	if len(attribution) == 0 {
		attribution = []string{owner}
	}
	l.records[id] = &Record{
		Owner:       owner,
		ACL:         map[string]Permission{},
		Attribution: dedupe(attribution),
	}
	return nil
}

// Grant adds permissions for a principal. Only meaningful when called
// by code acting for the owner; the ledger itself does not
// authenticate.
func (l *Ledger) Grant(id core.ID, principal string, p Permission) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.records[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRecord, id)
	}
	rec.ACL[principal] |= p
	return nil
}

// Revoke removes permissions for a principal.
func (l *Ledger) Revoke(id core.ID, principal string, p Permission) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.records[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRecord, id)
	}
	rec.ACL[principal] &^= p
	return nil
}

// Check reports whether principal holds permission p on the object.
// Owners hold everything.
func (l *Ledger) Check(id core.ID, principal string, p Permission) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.records[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoRecord, id)
	}
	if rec.Owner == principal {
		return nil
	}
	if rec.ACL[principal]&p == p {
		return nil
	}
	return fmt.Errorf("%w: %s lacks %v on %v", ErrDenied, principal, p, id)
}

// Attribution returns the credited rights holders of an object.
func (l *Ledger) Attribution(id core.ID) ([]string, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.records[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRecord, id)
	}
	return append([]string(nil), rec.Attribution...), nil
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// GuardedDB couples a catalog with a ledger and a current principal.
// Its methods enforce permissions and propagate attribution; all other
// catalog operations remain available through the embedded DB.
type GuardedDB struct {
	*catalog.DB
	Ledger    *Ledger
	Principal string
}

// Guard wraps a catalog for the given principal.
func Guard(db *catalog.DB, ledger *Ledger, principal string) *GuardedDB {
	return &GuardedDB{DB: db, Ledger: ledger, Principal: principal}
}

// As returns a view of the same database acting for another principal.
func (g *GuardedDB) As(principal string) *GuardedDB {
	return &GuardedDB{DB: g.DB, Ledger: g.Ledger, Principal: principal}
}

// Ingest stores media and registers the principal as owner.
func (g *GuardedDB) Ingest(name string, v *derive.Value, opts catalog.IngestOptions) (core.ID, error) {
	id, err := g.DB.Ingest(name, v, opts)
	if err != nil {
		return 0, err
	}
	if err := g.Ledger.Register(id, g.Principal); err != nil {
		return 0, err
	}
	return id, nil
}

// Expand requires PermRead on the object and, transitively, on every
// source a derived object reads.
func (g *GuardedDB) Expand(id core.ID) (*derive.Value, error) {
	if err := g.checkTree(id, PermRead); err != nil {
		return nil, err
	}
	return g.DB.Expand(id)
}

// AddDerived requires PermDerive on every input; the new object is
// owned by the principal and credits the union of the inputs'
// attributions plus the principal.
func (g *GuardedDB) AddDerived(name, op string, inputs []core.ID, params []byte, attrs map[string]string) (core.ID, error) {
	credits := []string{g.Principal}
	for _, in := range inputs {
		if err := g.Ledger.Check(in, g.Principal, PermDerive); err != nil {
			return 0, err
		}
		att, err := g.Ledger.Attribution(in)
		if err != nil {
			return 0, err
		}
		credits = append(credits, att...)
	}
	id, err := g.DB.AddDerived(name, op, inputs, params, attrs)
	if err != nil {
		return 0, err
	}
	if err := g.Ledger.Register(id, g.Principal, credits...); err != nil {
		return 0, err
	}
	return id, nil
}

// checkTree verifies permission on the object and every media object
// beneath it in the derivation graph.
func (g *GuardedDB) checkTree(id core.ID, p Permission) error {
	if err := g.Ledger.Check(id, g.Principal, p); err != nil {
		return err
	}
	obj, err := g.DB.Get(id)
	if err != nil {
		return err
	}
	if obj.Class == core.ClassDerived {
		for _, in := range obj.Derivation.Inputs {
			if err := g.checkTree(in, p); err != nil {
				return err
			}
		}
	}
	return nil
}

package rights

import (
	"errors"
	"testing"

	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
	"timedmedia/internal/fixtures"
)

func guarded(t *testing.T, principal string) *GuardedDB {
	t.Helper()
	return Guard(fixtures.NewMemDB(), NewLedger(), principal)
}

func TestOwnerHasAllPermissions(t *testing.T) {
	g := guarded(t, "alice")
	id, err := g.Ingest("clip", fixtures.Video(4, 16, 16, 1), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Expand(id); err != nil {
		t.Errorf("owner read denied: %v", err)
	}
	if _, err := g.AddDerived("cut", "video-edit", []core.ID{id},
		derive.EncodeParams(derive.EditParams{Entries: []derive.EditEntry{{Input: 0, From: 0, To: 2}}}), nil); err != nil {
		t.Errorf("owner derive denied: %v", err)
	}
}

func TestStrangerDenied(t *testing.T) {
	g := guarded(t, "alice")
	id, err := g.Ingest("clip", fixtures.Video(4, 16, 16, 1), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bob := g.As("bob")
	if _, err := bob.Expand(id); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger read: %v", err)
	}
	if _, err := bob.AddDerived("steal", "video-edit", []core.ID{id},
		derive.EncodeParams(derive.EditParams{Entries: []derive.EditEntry{{Input: 0, From: 0, To: 2}}}), nil); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger derive: %v", err)
	}
}

func TestGrantAndRevoke(t *testing.T) {
	g := guarded(t, "alice")
	id, _ := g.Ingest("clip", fixtures.Video(4, 16, 16, 1), catalog.IngestOptions{})
	bob := g.As("bob")

	if err := g.Ledger.Grant(id, "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Expand(id); err != nil {
		t.Errorf("granted read denied: %v", err)
	}
	// Read does not imply derive.
	if _, err := bob.AddDerived("cut", "video-edit", []core.ID{id},
		derive.EncodeParams(derive.EditParams{Entries: []derive.EditEntry{{Input: 0, From: 0, To: 2}}}), nil); !errors.Is(err, ErrDenied) {
		t.Errorf("read-only principal derived: %v", err)
	}
	if err := g.Ledger.Revoke(id, "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	g.DB.InvalidateCache()
	if _, err := bob.Expand(id); !errors.Is(err, ErrDenied) {
		t.Errorf("revoked read allowed: %v", err)
	}
}

func TestAttributionPropagatesThroughDerivation(t *testing.T) {
	g := guarded(t, "alice")
	a, _ := g.Ingest("a", fixtures.Video(4, 16, 16, 1), catalog.IngestOptions{})
	g.Ledger.Grant(a, "bob", PermRead|PermDerive)

	bobClip, err := g.As("bob").Ingest("b", fixtures.Video(4, 16, 16, 2), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g.Ledger.Grant(bobClip, "carol", PermDerive)
	g.Ledger.Grant(a, "carol", PermDerive)

	mix, err := g.As("carol").AddDerived("mix", "video-transition", []core.ID{a, bobClip},
		derive.EncodeParams(derive.TransitionParams{Type: "fade", Dur: 2}), nil)
	if err != nil {
		t.Fatal(err)
	}
	att, err := g.Ledger.Attribution(mix)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alice", "bob", "carol"}
	if len(att) != 3 {
		t.Fatalf("attribution = %v", att)
	}
	for i := range want {
		if att[i] != want[i] {
			t.Errorf("attribution = %v, want %v", att, want)
		}
	}
}

func TestDerivedReadChecksSources(t *testing.T) {
	// Bob may read the derived object but not its source: expansion
	// must be denied, because expanding reads the source elements.
	g := guarded(t, "alice")
	src, _ := g.Ingest("src", fixtures.Video(4, 16, 16, 1), catalog.IngestOptions{})
	cut, err := g.AddDerived("cut", "video-edit", []core.ID{src},
		derive.EncodeParams(derive.EditParams{Entries: []derive.EditEntry{{Input: 0, From: 0, To: 2}}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Ledger.Grant(cut, "bob", PermRead)
	if _, err := g.As("bob").Expand(cut); !errors.Is(err, ErrDenied) {
		t.Errorf("transitive read not checked: %v", err)
	}
	// Granting the source unlocks it.
	g.Ledger.Grant(src, "bob", PermRead)
	if _, err := g.As("bob").Expand(cut); err != nil {
		t.Errorf("read after grant: %v", err)
	}
}

func TestLedgerErrors(t *testing.T) {
	l := NewLedger()
	if err := l.Check(1, "x", PermRead); !errors.Is(err, ErrNoRecord) {
		t.Errorf("missing record: %v", err)
	}
	if err := l.Grant(1, "x", PermRead); !errors.Is(err, ErrNoRecord) {
		t.Errorf("grant missing: %v", err)
	}
	if err := l.Revoke(1, "x", PermRead); !errors.Is(err, ErrNoRecord) {
		t.Errorf("revoke missing: %v", err)
	}
	if _, err := l.Attribution(1); !errors.Is(err, ErrNoRecord) {
		t.Errorf("attribution missing: %v", err)
	}
	if err := l.Register(1, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(1, "bob"); !errors.Is(err, ErrDupRecord) {
		t.Errorf("dup: %v", err)
	}
}

func TestUnregisteredObjectDeniedByDefault(t *testing.T) {
	// Objects added through the raw catalog (bypassing Guard) have no
	// record, and reads fail closed.
	g := guarded(t, "alice")
	id, err := g.DB.Ingest("raw", fixtures.Video(2, 16, 16, 1), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Expand(id); !errors.Is(err, ErrNoRecord) {
		t.Errorf("unregistered: %v", err)
	}
}

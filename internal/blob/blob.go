// Package blob implements BLOBs (Definition 4 of Gibbs et al., SIGMOD
// 1994): attribute values that appear to applications as byte
// sequences, with an interface to read and append data.
//
// The paper notes that BLOB layout (contiguous vs fragmented) is a
// performance concern, not a data modeling one; this package provides
// an in-memory store and a file-backed store behind one interface, and
// instruments reads so the benchmark harness can measure bytes touched
// (scaled playback and layout ablations need exactly that number).
//
// Per the paper, insertion and deletion of byte spans are not provided:
// "for time-based media these operations are not essential since
// non-destructive editing techniques are often used."
package blob

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors.
var (
	ErrNotFound   = errors.New("blob: not found")
	ErrOutOfRange = errors.New("blob: span out of range")
	ErrClosed     = errors.New("blob: store closed")
)

// ID identifies a BLOB within a store.
type ID uint64

// String formats the ID.
func (id ID) String() string { return fmt.Sprintf("blob-%d", id) }

// BLOB is the byte-sequence view of Definition 4.
type BLOB interface {
	// ReadSpan reads n bytes starting at off. It returns ErrOutOfRange
	// if the span extends past the end.
	ReadSpan(off, n int64) ([]byte, error)
	// Append adds data at the end and returns the offset at which it
	// was placed.
	Append(data []byte) (off int64, err error)
	// Size returns the current length in bytes.
	Size() int64
}

// Stats counts I/O against a BLOB or store, for the measurement-driven
// benches. Corruptions counts payloads that failed their integrity
// check on open and were quarantined (file stores only).
type Stats struct {
	Reads         atomic.Int64
	BytesRead     atomic.Int64
	Appends       atomic.Int64
	BytesAppended atomic.Int64
	Corruptions   atomic.Int64
}

// Snapshot returns a plain-value copy.
func (s *Stats) Snapshot() (reads, bytesRead, appends, bytesAppended int64) {
	return s.Reads.Load(), s.BytesRead.Load(), s.Appends.Load(), s.BytesAppended.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Store(0)
	s.BytesRead.Store(0)
	s.Appends.Store(0)
	s.BytesAppended.Store(0)
}

// Store manages a set of BLOBs.
type Store interface {
	// Create allocates a fresh empty BLOB.
	Create() (ID, BLOB, error)
	// Open returns the BLOB with the given ID.
	Open(id ID) (BLOB, error)
	// Delete removes a BLOB.
	Delete(id ID) error
	// IDs lists existing BLOBs in ascending order.
	IDs() ([]ID, error)
	// Stats exposes the store-wide I/O counters.
	Stats() *Stats
}

// MemStore is an in-memory Store. The zero value is not usable;
// construct with NewMemStore. Safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	next  ID
	blobs map[ID]*memBLOB
	stats Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{next: 1, blobs: make(map[ID]*memBLOB)}
}

// Create implements Store.
func (s *MemStore) Create() (ID, BLOB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	b := &memBLOB{stats: &s.stats}
	s.blobs[id] = b
	return id, b, nil
}

// Open implements Store.
func (s *MemStore) Open(id ID) (BLOB, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return b, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[id]; !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	delete(s.blobs, id)
	return nil
}

// IDs implements Store.
func (s *MemStore) IDs() ([]ID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.blobs))
	for id := range s.blobs {
		out = append(out, id)
	}
	sortIDs(out)
	return out, nil
}

// Stats implements Store.
func (s *MemStore) Stats() *Stats { return &s.stats }

// memBLOB is a growable byte buffer with instrumentation.
type memBLOB struct {
	mu    sync.RWMutex
	data  []byte
	stats *Stats
}

// ReadSpan implements BLOB.
func (b *memBLOB) ReadSpan(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, ErrOutOfRange
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off+n > int64(len(b.data)) {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+n, len(b.data))
	}
	out := make([]byte, n)
	copy(out, b.data[off:off+n])
	b.stats.Reads.Add(1)
	b.stats.BytesRead.Add(n)
	return out, nil
}

// Append implements BLOB.
func (b *memBLOB) Append(data []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	off := int64(len(b.data))
	b.data = append(b.data, data...)
	b.stats.Appends.Add(1)
	b.stats.BytesAppended.Add(int64(len(data)))
	return off, nil
}

// Size implements BLOB.
func (b *memBLOB) Size() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data))
}

func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

package blob

// Payload integrity for the file store: a CRC32C sidecar
// (<n>.blob.crc) is written when a BLOB is sealed (Sync) and verified
// the first time the file is opened from disk. A mismatch means the
// payload rotted or was torn after it was acknowledged; the store
// quarantines the file (renames it to <n>.blob.corrupt) instead of
// serving the bad bytes, and counts the event in Stats.Corruptions.
//
// The sidecar is advisory in the safe direction: a missing or
// unparseable sidecar skips verification (stores written before
// sidecars existed, or a crash mid-sidecar-write, must not quarantine
// good data), and the sidecar's recorded size bounds the checked
// prefix, so bytes appended after the last seal are not mistaken for
// corruption — the next Sync re-seals over the longer payload.

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrCorrupt reports a BLOB whose payload failed its CRC sidecar
// check; the file has been quarantined.
var ErrCorrupt = fmt.Errorf("blob: payload corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileName returns the file name a file store uses for a BLOB —
// exported so replication can install a primary's payload files
// directly into a follower's directory before the store opens them.
func FileName(id ID) string { return blobName(id) }

// SidecarFile returns the CRC sidecar path for a blob file path.
func SidecarFile(path string) string { return path + ".crc" }

// WriteSidecar records (crc, size) for the blob file at path. The
// sidecar is a single text line — "crc32c <hex> <size>" — so a torn
// write is unparseable and therefore ignored rather than
// misinterpreted.
func WriteSidecar(path string, crc uint32, size int64) error {
	line := fmt.Sprintf("crc32c %08x %d\n", crc, size)
	if err := os.WriteFile(SidecarFile(path), []byte(line), 0o644); err != nil {
		return fmt.Errorf("blob: sidecar: %w", err)
	}
	return nil
}

// ReadSidecar parses the sidecar for the blob file at path. ok is
// false when the sidecar is missing or unparseable — verification is
// skipped, never failed, on those.
func ReadSidecar(path string) (crc uint32, size int64, ok bool) {
	data, err := os.ReadFile(SidecarFile(path))
	if err != nil {
		return 0, 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) != 3 || fields[0] != "crc32c" {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return 0, 0, false
	}
	n, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil || n < 0 {
		return 0, 0, false
	}
	return uint32(c), n, true
}

// ChecksumReader computes the CRC32C of the first size bytes of r
// (all of r when size < 0), returning the checksum and the byte count
// consumed. Replication uses it to seal payloads it streams to disk.
func ChecksumReader(r io.Reader, size int64) (uint32, int64, error) {
	h := crc32.New(castagnoli)
	var src io.Reader = r
	if size >= 0 {
		src = io.LimitReader(r, size)
	}
	n, err := io.Copy(h, src)
	if err != nil {
		return 0, n, err
	}
	return h.Sum32(), n, nil
}

// verifySidecar checks the blob file at path against its sidecar, if
// one exists. Returns ErrCorrupt (wrapped) on mismatch; the caller
// quarantines.
func verifySidecar(path string) error {
	want, size, ok := ReadSidecar(path)
	if !ok {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("blob: verify: %w", err)
	}
	defer f.Close()
	got, n, err := ChecksumReader(f, size)
	if err != nil {
		return fmt.Errorf("blob: verify: %w", err)
	}
	if n < size {
		return fmt.Errorf("%w: %s holds %d of %d sealed bytes", ErrCorrupt, path, n, size)
	}
	if got != want {
		return fmt.Errorf("%w: %s crc32c %08x, sidecar says %08x", ErrCorrupt, path, got, want)
	}
	return nil
}

// quarantine renames a corrupt blob file (and its sidecar) out of the
// store's namespace so it is never served again but stays on disk for
// forensics.
func quarantine(path string) {
	os.Rename(path, path+".corrupt")
	os.Rename(SidecarFile(path), path+".corrupt.crc")
}

package blob

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// storeImpls runs a subtest against both store implementations.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMemStore()) })
	t.Run("file", func(t *testing.T) {
		fs, err := OpenFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		fn(t, fs)
	})
}

func TestAppendAndReadSpan(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		_, b, err := s.Create()
		if err != nil {
			t.Fatal(err)
		}
		off1, err := b.Append([]byte("hello "))
		if err != nil || off1 != 0 {
			t.Fatalf("off1=%d err=%v", off1, err)
		}
		off2, err := b.Append([]byte("world"))
		if err != nil || off2 != 6 {
			t.Fatalf("off2=%d err=%v", off2, err)
		}
		if b.Size() != 11 {
			t.Errorf("size = %d", b.Size())
		}
		got, err := b.ReadSpan(6, 5)
		if err != nil || !bytes.Equal(got, []byte("world")) {
			t.Errorf("read = %q err=%v", got, err)
		}
	})
}

func TestReadSpanOutOfRange(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		_, b, _ := s.Create()
		b.Append([]byte("abc"))
		if _, err := b.ReadSpan(1, 5); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("err = %v", err)
		}
		if _, err := b.ReadSpan(-1, 2); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative off: %v", err)
		}
		if _, err := b.ReadSpan(0, -2); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative n: %v", err)
		}
	})
}

func TestOpenDelete(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		id, b, _ := s.Create()
		b.Append([]byte("data"))
		got, err := s.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != 4 {
			t.Errorf("size = %d", got.Size())
		}
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Open(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("open deleted: %v", err)
		}
		if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete: %v", err)
		}
	})
}

func TestIDsSorted(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		var created []ID
		for i := 0; i < 5; i++ {
			id, _, _ := s.Create()
			created = append(created, id)
		}
		ids, err := s.IDs()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 5 {
			t.Fatalf("ids = %v", ids)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Errorf("ids not ascending: %v", ids)
			}
		}
	})
}

func TestStatsCountReads(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		_, b, _ := s.Create()
		b.Append(make([]byte, 1000))
		s.Stats().Reset()
		b.ReadSpan(0, 100)
		b.ReadSpan(100, 200)
		reads, bytesRead, _, _ := s.Stats().Snapshot()
		if reads != 2 || bytesRead != 300 {
			t.Errorf("reads=%d bytes=%d", reads, bytesRead)
		}
	})
}

func TestStatsCountAppends(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		_, b, _ := s.Create()
		b.Append(make([]byte, 10))
		b.Append(make([]byte, 20))
		_, _, appends, bytesAppended := s.Stats().Snapshot()
		if appends != 2 || bytesAppended != 30 {
			t.Errorf("appends=%d bytes=%d", appends, bytesAppended)
		}
	})
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, b, _ := fs.Create()
	b.Append([]byte("persistent"))
	fs.Close()

	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := got.ReadSpan(0, 10)
	if err != nil || string(data) != "persistent" {
		t.Errorf("data = %q err=%v", data, err)
	}
	// New IDs must not collide with recovered ones.
	id2, _, _ := fs2.Create()
	if id2 <= id {
		t.Errorf("new id %v <= old id %v", id2, id)
	}
}

func TestFileBLOBClosed(t *testing.T) {
	fs, _ := OpenFileStore(t.TempDir())
	_, b, _ := fs.Create()
	fs.Close()
	if _, err := b.ReadSpan(0, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
	if _, err := b.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
}

func TestConcurrentAppendRead(t *testing.T) {
	s := NewMemStore()
	_, b, _ := s.Create()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Append([]byte{1, 2, 3, 4})
				if sz := b.Size(); sz >= 4 {
					if _, err := b.ReadSpan(0, 4); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if b.Size() != 8*100*4 {
		t.Errorf("size = %d", b.Size())
	}
}

func TestAppendReadRoundTripProperty(t *testing.T) {
	s := NewMemStore()
	_, b, _ := s.Create()
	var offs []int64
	var datas [][]byte
	f := func(chunk []byte) bool {
		off, err := b.Append(chunk)
		if err != nil {
			return false
		}
		offs = append(offs, off)
		datas = append(datas, append([]byte(nil), chunk...))
		// Verify a random previous chunk.
		i := len(offs) / 2
		got, err := b.ReadSpan(offs[i], int64(len(datas[i])))
		return err == nil && bytes.Equal(got, datas[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParseBlobName(t *testing.T) {
	if id, ok := parseBlobName("42.blob"); !ok || id != 42 {
		t.Errorf("got %v %v", id, ok)
	}
	for _, bad := range []string{"x.blob", "0.blob", "42.dat", "blob"} {
		if _, ok := parseBlobName(bad); ok {
			t.Errorf("%q parsed", bad)
		}
	}
}

package blob

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// FileStore is a Store backed by one file per BLOB inside a directory.
// It persists across process restarts: opening an existing directory
// rediscovers its BLOBs. Safe for concurrent use.
type FileStore struct {
	mu    sync.Mutex
	dir   string
	next  ID
	open  map[ID]*fileBLOB
	stats Stats
}

// OpenFileStore opens (creating if necessary) a file-backed store in
// dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	s := &FileStore{dir: dir, next: 1, open: map[ID]*fileBLOB{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	for _, e := range entries {
		id, ok := parseBlobName(e.Name())
		if !ok {
			continue
		}
		if id >= s.next {
			s.next = id + 1
		}
	}
	return s, nil
}

func blobName(id ID) string { return fmt.Sprintf("%d.blob", uint64(id)) }

func parseBlobName(name string) (ID, bool) {
	base, ok := strings.CutSuffix(name, ".blob")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return ID(n), true
}

func (s *FileStore) path(id ID) string { return filepath.Join(s.dir, blobName(id)) }

// Create implements Store.
func (s *FileStore) Create() (ID, BLOB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	f, err := os.OpenFile(s.path(id), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return 0, nil, fmt.Errorf("blob: %w", err)
	}
	b := &fileBLOB{f: f, stats: &s.stats}
	s.open[id] = b
	return id, b, nil
}

// Open implements Store. The first open of a file in this process
// verifies its payload against the CRC sidecar (when one exists); a
// mismatch quarantines the file and returns ErrCorrupt instead of
// serving rotted bytes. Cached handles were verified when first
// opened.
func (s *FileStore) Open(id ID) (BLOB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.open[id]; ok {
		return b, nil
	}
	path := s.path(id)
	if err := verifySidecar(path); err != nil {
		if errors.Is(err, ErrCorrupt) {
			quarantine(path)
			s.stats.Corruptions.Add(1)
			return nil, err
		}
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
		}
		return nil, fmt.Errorf("blob: %w", err)
	}
	b := &fileBLOB{f: f, stats: &s.stats}
	s.open[id] = b
	return b, nil
}

// Reserve advances the ID allocator past id. Replication installs a
// primary's payload files directly into the directory after the store
// was opened; without reserving their IDs a later Create (on a
// promoted follower) would collide with an installed file.
func (s *FileStore) Reserve(id ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= s.next {
		s.next = id + 1
	}
}

// Delete implements Store.
func (s *FileStore) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.open[id]; ok {
		b.close()
		delete(s.open, id)
	}
	if err := os.Remove(s.path(id)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %v", ErrNotFound, id)
		}
		return fmt.Errorf("blob: %w", err)
	}
	os.Remove(SidecarFile(s.path(id)))
	return nil
}

// IDs implements Store. A ReadDir failure is propagated rather than
// reported as an empty store: callers must be able to tell "no BLOBs"
// from "directory unreadable".
func (s *FileStore) IDs() ([]ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	var out []ID
	for _, e := range entries {
		if id, ok := parseBlobName(e.Name()); ok {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out, nil
}

// Sync flushes a BLOB's appended bytes to stable storage. BLOBs that
// were never opened in this process have nothing buffered and sync
// trivially. The catalog calls this before journaling an
// interpretation record, so replay never references bytes that died
// in the page cache. Sync is the seal point of a payload — the
// catalog never appends to a blob after its interpretation is
// journaled — so the CRC sidecar is written here, covering exactly
// the synced bytes.
func (s *FileStore) Sync(id ID) error {
	s.mu.Lock()
	b, ok := s.open[id]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return ErrClosed
	}
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("blob: sync %v: %w", id, err)
	}
	crc, size, err := b.checksumLocked()
	if err != nil {
		return fmt.Errorf("blob: sync %v: %w", id, err)
	}
	// The sidecar itself is not fsynced: losing it in a crash merely
	// skips verification, which is the safe direction.
	return WriteSidecar(s.path(id), crc, size)
}

// Stats implements Store.
func (s *FileStore) Stats() *Stats { return &s.stats }

// Close releases all open file handles.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, b := range s.open {
		if err := b.close(); err != nil && first == nil {
			first = err
		}
		delete(s.open, id)
	}
	return first
}

type fileBLOB struct {
	mu    sync.Mutex
	f     *os.File
	stats *Stats
}

// ReadSpan implements BLOB.
func (b *fileBLOB) ReadSpan(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, ErrOutOfRange
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil, ErrClosed
	}
	fi, err := b.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	if off+n > fi.Size() {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+n, fi.Size())
	}
	out := make([]byte, n)
	if _, err := b.f.ReadAt(out, off); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	b.stats.Reads.Add(1)
	b.stats.BytesRead.Add(n)
	return out, nil
}

// Append implements BLOB.
func (b *fileBLOB) Append(data []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return 0, ErrClosed
	}
	off, err := b.f.Seek(0, 2)
	if err != nil {
		return 0, fmt.Errorf("blob: %w", err)
	}
	if _, err := b.f.Write(data); err != nil {
		return 0, fmt.Errorf("blob: %w", err)
	}
	b.stats.Appends.Add(1)
	b.stats.BytesAppended.Add(int64(len(data)))
	return off, nil
}

// Size implements BLOB.
func (b *fileBLOB) Size() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return 0
	}
	fi, err := b.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// checksumLocked computes the CRC32C and size of the whole file.
// Assumes b.mu is held.
func (b *fileBLOB) checksumLocked() (uint32, int64, error) {
	fi, err := b.f.Stat()
	if err != nil {
		return 0, 0, err
	}
	crc, n, err := ChecksumReader(io.NewSectionReader(b.f, 0, fi.Size()), fi.Size())
	if err != nil {
		return 0, 0, err
	}
	return crc, n, nil
}

func (b *fileBLOB) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

package blob

import "time"

// Observer receives the wall time of each BLOB span read.
// telemetry.*Histogram satisfies it; the local interface keeps this
// package dependency-free.
type Observer interface {
	Observe(d time.Duration)
}

// Observed wraps store so every ReadSpan latency is reported to obs.
// Wrap at construction time, before the store is shared — the catalog
// holds opened BLOBs directly, so a wrapper added later would miss
// them. A Sync(ID) method on the inner store is forwarded.
func Observed(store Store, obs Observer) Store {
	if obs == nil {
		return store
	}
	return &observedStore{inner: store, obs: obs}
}

type observedStore struct {
	inner Store
	obs   Observer
}

// Create implements Store.
func (s *observedStore) Create() (ID, BLOB, error) {
	id, b, err := s.inner.Create()
	if err != nil {
		return id, b, err
	}
	return id, &observedBLOB{inner: b, obs: s.obs}, nil
}

// Open implements Store.
func (s *observedStore) Open(id ID) (BLOB, error) {
	b, err := s.inner.Open(id)
	if err != nil {
		return nil, err
	}
	return &observedBLOB{inner: b, obs: s.obs}, nil
}

// Delete implements Store.
func (s *observedStore) Delete(id ID) error { return s.inner.Delete(id) }

// IDs implements Store.
func (s *observedStore) IDs() ([]ID, error) { return s.inner.IDs() }

// Stats implements Store.
func (s *observedStore) Stats() *Stats { return s.inner.Stats() }

// Sync forwards blob fsync when the inner store supports it.
func (s *observedStore) Sync(id ID) error {
	if sy, ok := s.inner.(interface{ Sync(ID) error }); ok {
		return sy.Sync(id)
	}
	return nil
}

type observedBLOB struct {
	inner BLOB
	obs   Observer
}

// ReadSpan implements BLOB, timing the read.
func (b *observedBLOB) ReadSpan(off, n int64) ([]byte, error) {
	start := time.Now()
	out, err := b.inner.ReadSpan(off, n)
	b.obs.Observe(time.Since(start))
	return out, err
}

// Append implements BLOB.
func (b *observedBLOB) Append(data []byte) (int64, error) { return b.inner.Append(data) }

// Size implements BLOB.
func (b *observedBLOB) Size() int64 { return b.inner.Size() }

package synth

import (
	"errors"
	"math"
	"testing"

	"timedmedia/internal/anim"
	"timedmedia/internal/audio"
	"timedmedia/internal/frame"
	"timedmedia/internal/music"
	"timedmedia/internal/timebase"
)

func TestKeyFreq(t *testing.T) {
	if f := keyFreq(69); math.Abs(f-440) > 1e-9 {
		t.Errorf("A4 = %v", f)
	}
	if f := keyFreq(81); math.Abs(f-880) > 1e-9 {
		t.Errorf("A5 = %v", f)
	}
	if f := keyFreq(60); math.Abs(f-261.6256) > 0.01 {
		t.Errorf("C4 = %v", f)
	}
}

func TestSynthesizeProducesAudio(t *testing.T) {
	seq := music.Scale(60, 4, 0)
	buf, err := Synthesize(seq, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// 4 beats at 120 BPM = 2 s → ≈88200 frames at 44.1 kHz + release.
	if buf.Frames() < 88200 || buf.Frames() > 99225 {
		t.Errorf("frames = %d", buf.Frames())
	}
	if buf.Peak() < 1000 {
		t.Errorf("peak = %d — synthesis produced silence?", buf.Peak())
	}
	if buf.Channels != 2 {
		t.Errorf("channels = %d", buf.Channels)
	}
}

func TestSynthesizeDominantFrequency(t *testing.T) {
	// A single A4 note must put most energy near 440 Hz: verify via
	// zero-crossing rate ≈ 2*f.
	seq := music.NewSequence()
	seq.AddNote(0, 960, 0, 69, 127) // 2 beats of A4
	p := DefaultParams()
	p.Channels = 1
	p.ChannelInstruments = map[uint8]Instrument{0: {Name: "sine", Harmonics: []float64{1}, Attack: 0.001, Release: 0.01}}
	buf, err := Synthesize(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	// Inspect the steady middle second.
	mid := buf.Slice(11025, 33075)
	zc := 0
	for i := 1; i < len(mid.Samples); i++ {
		if (mid.Samples[i-1] < 0) != (mid.Samples[i] < 0) {
			zc++
		}
	}
	rate := float64(zc) / 2 / 0.5 // crossings per second / 2
	if math.Abs(rate-440) > 10 {
		t.Errorf("dominant frequency ≈ %v Hz, want 440", rate)
	}
}

func TestTempoChangesDuration(t *testing.T) {
	seq := music.Scale(60, 4, 0)
	slow := DefaultParams()
	slow.TempoBPM = 60
	fast := DefaultParams()
	fast.TempoBPM = 240
	bs, err := Synthesize(seq, slow)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Synthesize(seq, fast)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Frames() <= 3*bf.Frames() {
		t.Errorf("slow %d frames vs fast %d — tempo parameter ineffective", bs.Frames(), bf.Frames())
	}
}

func TestChannelInstrumentMapping(t *testing.T) {
	seq := music.NewSequence()
	seq.AddNote(0, 480, 3, 60, 100)
	p := DefaultParams()
	p.Channels = 1
	p.ChannelInstruments = map[uint8]Instrument{3: Organ}
	withOrgan, err := Synthesize(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := DefaultParams()
	p2.Channels = 1
	asPiano, err := Synthesize(seq, p2)
	if err != nil {
		t.Fatal(err)
	}
	n := withOrgan.Frames()
	if asPiano.Frames() < n {
		n = asPiano.Frames()
	}
	if audio.SNR(withOrgan.Slice(0, n), asPiano.Slice(0, n)) > 40 {
		t.Error("instrument mapping made no audible difference")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	seq := music.Scale(60, 2, 0)
	p := DefaultParams()
	p.TempoBPM = 0
	if _, err := Synthesize(seq, p); !errors.Is(err, ErrBadTempo) {
		t.Errorf("tempo: %v", err)
	}
	p = DefaultParams()
	p.SampleRate = timebase.System{}
	if _, err := Synthesize(seq, p); !errors.Is(err, ErrBadRate) {
		t.Errorf("rate: %v", err)
	}
	p = DefaultParams()
	p.Channels = 3
	if _, err := Synthesize(seq, p); err == nil {
		t.Error("3 channels must fail")
	}
	p = DefaultParams()
	p.ChannelInstruments = map[uint8]Instrument{16: Piano}
	if _, err := Synthesize(seq, p); !errors.Is(err, ErrBadChannel) {
		t.Errorf("channel 16: %v", err)
	}
	// Dangling note-on propagates.
	bad := music.NewSequence()
	bad.Events = []music.Event{{Tick: 0, Kind: music.NoteOn, Key: 60, Velocity: 100}}
	if _, err := Synthesize(bad, DefaultParams()); err == nil {
		t.Error("dangling note must fail")
	}
}

func TestRenderAnimation(t *testing.T) {
	scene := anim.NewScene(32, 24, timebase.PAL)
	id := scene.AddSprite(4, 4, 255, 255, 255, 0, 0)
	scene.Move(id, 0, 5, 20, 10)
	frames, err := RenderAnimation(scene, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 6 {
		t.Fatalf("frames = %d", len(frames))
	}
	d, _ := frame.MeanAbsDiff(frames[0], frames[5])
	if d == 0 {
		t.Error("animation rendered static frames")
	}
}

func TestRenderAnimationRange(t *testing.T) {
	scene := anim.NewScene(16, 16, timebase.PAL)
	id := scene.AddSprite(2, 2, 9, 9, 9, 0, 0)
	scene.Move(id, 0, 10, 10, 0)
	frames, err := RenderAnimation(scene, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Errorf("frames = %d", len(frames))
	}
	if _, err := RenderAnimation(scene, 5, 2); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := RenderAnimation(scene, -1, 2); err == nil {
		t.Error("negative start must fail")
	}
}

func TestRenderAnimationValidates(t *testing.T) {
	scene := anim.NewScene(16, 16, timebase.PAL)
	scene.Move(42, 0, 5, 1, 1) // unknown sprite
	if _, err := RenderAnimation(scene, 0, 0); err == nil {
		t.Error("invalid scene must fail")
	}
}

func TestSynthesisHonorsTempoEvents(t *testing.T) {
	// A note after a mid-piece slowdown starts later than without it.
	base := music.NewSequence()
	base.AddNote(960, 480, 0, 60, 100)
	plain, err := Synthesize(base, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	slowed := music.NewSequence()
	slowed.Events = append(slowed.Events, music.Event{Tick: 0, Kind: music.Tempo, Value: 2_000_000}) // 30 BPM
	slowed.AddNote(960, 480, 0, 60, 100)
	slow, err := Synthesize(slowed, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Frames() <= 3*plain.Frames() {
		t.Errorf("tempo event ignored: plain=%d slow=%d frames", plain.Frames(), slow.Frames())
	}
}

// Package synth implements the paper's type-changing derivations:
// synthesis of audio from music ("the synthesis of an audio object
// from a MIDI object") and of video from animation ("the synthesis of
// a video object via rendering an animation sequence") — Section 4.2
// and the Conclusion's treatment of symbolic media.
//
// The synthesizer is a small additive software instrument bank; the
// renderer drives anim.Scene. Fidelity is deliberately modest — the
// data model cares about the *mapping* (types, parameters, timing),
// not audiophile output (DESIGN.md §5).
package synth

import (
	"errors"
	"fmt"
	"math"

	"timedmedia/internal/anim"
	"timedmedia/internal/audio"
	"timedmedia/internal/frame"
	"timedmedia/internal/music"
	"timedmedia/internal/timebase"
)

// Errors.
var (
	ErrBadTempo   = errors.New("synth: tempo must be positive")
	ErrBadRate    = errors.New("synth: invalid sample rate")
	ErrBadChannel = errors.New("synth: channel mapping references channel > 15")
)

// Instrument shapes the tone of one MIDI channel.
type Instrument struct {
	// Name for display.
	Name string
	// Harmonics are relative amplitudes of the first N partials.
	Harmonics []float64
	// Attack and Release are envelope times in seconds.
	Attack, Release float64
}

// Builtin instruments.
var (
	Piano  = Instrument{Name: "piano", Harmonics: []float64{1, 0.5, 0.25, 0.12}, Attack: 0.005, Release: 0.2}
	Organ  = Instrument{Name: "organ", Harmonics: []float64{1, 0.8, 0.6, 0.4, 0.2}, Attack: 0.02, Release: 0.05}
	Violin = Instrument{Name: "violin", Harmonics: []float64{1, 0.7, 0.5, 0.35, 0.2, 0.1}, Attack: 0.08, Release: 0.15}
)

// Params are the MIDI-synthesis derivation parameters the paper lists:
// "Parameters are tempo, MIDI channel mappings and instrument
// parameters."
type Params struct {
	// TempoBPM sets quarter notes per minute (the music sequence's
	// division is pulses; 480 pulses = one quarter at the default).
	TempoBPM float64
	// SampleRate is the output audio time system.
	SampleRate timebase.System
	// Channels is the output channel count (1 or 2).
	Channels int
	// ChannelInstruments maps MIDI channel → instrument; unmapped
	// channels use Piano.
	ChannelInstruments map[uint8]Instrument
	// Gain scales the mix (0..1].
	Gain float64
}

// DefaultParams returns CD-rate stereo piano synthesis at 120 BPM.
func DefaultParams() Params {
	return Params{TempoBPM: 120, SampleRate: timebase.CDAudio, Channels: 2, Gain: 0.5}
}

// Synthesize renders a music sequence to PCM audio. The result length
// covers the last note-off plus the longest release tail.
func Synthesize(seq *music.Sequence, p Params) (*audio.Buffer, error) {
	if p.TempoBPM <= 0 {
		return nil, ErrBadTempo
	}
	if !p.SampleRate.Valid() {
		return nil, ErrBadRate
	}
	if p.Channels != 1 && p.Channels != 2 {
		return nil, fmt.Errorf("synth: channels must be 1 or 2, got %d", p.Channels)
	}
	if p.Gain <= 0 {
		p.Gain = 0.5
	}
	for ch := range p.ChannelInstruments {
		if ch > 15 {
			return nil, ErrBadChannel
		}
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	notes, err := seq.Notes()
	if err != nil {
		return nil, err
	}
	rate := p.SampleRate.Frequency()
	// Pulse timing honors in-sequence Tempo events; TempoBPM sets the
	// initial tempo (the division is calibrated at 480 PPQ).
	tm := music.NewTempoMap(seq, p.TempoBPM)

	maxRelease := 0.0
	for _, inst := range p.ChannelInstruments {
		if inst.Release > maxRelease {
			maxRelease = inst.Release
		}
	}
	if Piano.Release > maxRelease {
		maxRelease = Piano.Release
	}
	totalSec := tm.Seconds(seq.Duration()) + maxRelease
	frames := int(math.Ceil(totalSec * rate))
	if frames <= 0 {
		frames = 1
	}
	mix := make([]float64, frames)
	for _, n := range notes {
		inst, ok := p.ChannelInstruments[n.Channel]
		if !ok {
			inst = Piano
		}
		renderNote(mix, n, inst, tm, rate)
	}
	out := audio.NewBuffer(frames, p.Channels)
	for i, v := range mix {
		s := v * p.Gain * math.MaxInt16
		if s > math.MaxInt16 {
			s = math.MaxInt16
		}
		if s < math.MinInt16 {
			s = math.MinInt16
		}
		for c := 0; c < p.Channels; c++ {
			out.Samples[i*p.Channels+c] = int16(s)
		}
	}
	return out, nil
}

// renderNote adds one note's waveform into the mix.
func renderNote(mix []float64, n music.Note, inst Instrument, tm *music.TempoMap, rate float64) {
	freq := keyFreq(n.Key)
	startSec := tm.Seconds(n.Tick)
	durSec := tm.DurationSeconds(n.Tick, n.Dur)
	amp := float64(n.Velocity) / 127
	start := int(startSec * rate)
	sustain := int(durSec * rate)
	release := int(inst.Release * rate)
	attack := int(inst.Attack * rate)
	if attack < 1 {
		attack = 1
	}
	total := sustain + release
	for i := 0; i < total; i++ {
		idx := start + i
		if idx < 0 || idx >= len(mix) {
			continue
		}
		env := 1.0
		if i < attack {
			env = float64(i) / float64(attack)
		}
		if i >= sustain {
			env *= 1 - float64(i-sustain)/float64(release+1)
		}
		t := float64(i) / rate
		var v float64
		for h, ha := range inst.Harmonics {
			v += ha * math.Sin(2*math.Pi*freq*float64(h+1)*t)
		}
		mix[idx] += amp * env * v / float64(len(inst.Harmonics))
	}
}

// keyFreq converts a MIDI key number to Hz (A4 = key 69 = 440 Hz).
func keyFreq(key uint8) float64 {
	return 440 * math.Pow(2, (float64(key)-69)/12)
}

// RenderAnimation renders an animation scene to a video frame
// sequence at its frame rate — the animation→video derivation.
// fromTick/toTick bound the rendered range; toTick <= 0 means the
// scene's full duration.
func RenderAnimation(scene *anim.Scene, fromTick, toTick int64) ([]*frame.Frame, error) {
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	if toTick <= 0 {
		toTick = scene.Duration() + 1
	}
	if fromTick < 0 || fromTick >= toTick {
		return nil, fmt.Errorf("synth: bad render range [%d,%d)", fromTick, toTick)
	}
	out := make([]*frame.Frame, 0, toTick-fromTick)
	for t := fromTick; t < toTick; t++ {
		out = append(out, scene.Render(t))
	}
	return out, nil
}

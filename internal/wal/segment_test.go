package wal

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

func collectRecords(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	if _, err := ReplaySegments(dir, func(d []byte) error {
		out = append(out, string(d))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSegmentedAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendBatch([][]byte{[]byte("b0"), []byte("b1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(t, dir)
	if len(recs) != 12 || recs[0] != "rec0" || recs[11] != "b1" {
		t.Fatalf("recs = %v", recs)
	}
}

// TestSegmentedRotationByRecords: crossing the record threshold seals
// the segment; records land across multiple files but replay in order.
func TestSegmentedRotationByRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, WithSegmentRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := s.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Rotations; got < 2 {
		t.Errorf("rotations = %d, want >= 2", got)
	}
	idxs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) < 3 {
		t.Fatalf("segments = %v, want >= 3", idxs)
	}
	s.Close()
	recs := collectRecords(t, dir)
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
	for i, r := range recs {
		if r != fmt.Sprintf("r%02d", i) {
			t.Fatalf("recs[%d] = %q (order broken across rotation)", i, r)
		}
	}
}

// TestSegmentedExplicitRotateBoundary: records appended before Rotate
// live in segments <= the returned index; records after live beyond
// it. CompactThrough then removes exactly the covered prefix.
func TestSegmentedExplicitRotateBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("before1"))
	s.Append([]byte("before2"))
	sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("after"))

	// Everything <= sealed holds only the "before" records.
	var pre []string
	for idx := uint64(1); idx <= sealed; idx++ {
		Replay(SegmentFile(dir, idx), func(d []byte) error {
			pre = append(pre, string(d))
			return nil
		})
	}
	if len(pre) != 2 {
		t.Fatalf("prefix records = %v", pre)
	}

	n, err := s.CompactThrough(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("compacted %d segments, want 1", n)
	}
	s.Close()
	recs := collectRecords(t, dir)
	if len(recs) != 1 || recs[0] != "after" {
		t.Fatalf("post-compaction records = %v", recs)
	}
	if st := s.Stats(); st.SegmentsCompacted != 1 {
		t.Errorf("SegmentsCompacted = %d", st.SegmentsCompacted)
	}
}

// TestSegmentedCompactNeverDeletesActive: a compaction bound at or
// beyond the active index must leave the active segment alone.
func TestSegmentedCompactNeverDeletesActive(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Append([]byte("live"))
	if _, err := s.CompactThrough(99); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.ActivePath()); err != nil {
		t.Fatalf("active segment deleted by compaction: %v", err)
	}
	recs := collectRecords(t, dir)
	if len(recs) != 1 {
		t.Fatalf("records = %v", recs)
	}
}

// TestSegmentedReopenResumesHighest: reopening a directory continues
// appending to the highest segment, and replay sees everything.
func TestSegmentedReopenResumesHighest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, WithSegmentRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append([]byte(fmt.Sprintf("a%d", i)))
	}
	high := s.ActiveIndex()
	s.Close()

	s2, err := OpenSegmented(dir, WithSegmentRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	if s2.ActiveIndex() != high {
		t.Fatalf("reopened at segment %d, want %d", s2.ActiveIndex(), high)
	}
	s2.Append([]byte("b0"))
	s2.Close()
	recs := collectRecords(t, dir)
	if len(recs) != 6 || recs[5] != "b0" {
		t.Fatalf("recs = %v", recs)
	}
}

// TestSegmentedConcurrentAppendsAcrossRotation: concurrent appenders
// racing size-triggered rotations lose no records and tear no frames.
// Run with -race.
func TestSegmentedConcurrentAppendsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, WithSegmentRecords(8))
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	seen := map[string]bool{}
	results, err := ReplaySegments(dir, func(d []byte) error {
		seen[string(d)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Torn {
			t.Errorf("segment %d torn after clean close", r.Index)
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("replayed %d unique records, want %d", len(seen), workers*per)
	}
}

// TestSegmentedTornTailInLastSegment: a crash mid-append tears only
// the last segment; earlier segments replay clean and the caller can
// truncate the tear at the reported offset.
func TestSegmentedTornTailInLastSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, WithSegmentRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append([]byte(fmt.Sprintf("rec%d", i)))
	}
	last := s.ActivePath()
	s.Close()
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	var recs []string
	results, err := ReplaySegments(dir, func(d []byte) error {
		recs = append(recs, string(d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lastRes := results[len(results)-1]
	if !lastRes.Torn {
		t.Fatal("tear not reported")
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (intact prefix)", len(recs))
	}
	if err := TruncateAt(SegmentFile(dir, lastRes.Index), lastRes.TornOffset); err != nil {
		t.Fatal(err)
	}
	// After truncation a reopen appends at a clean boundary.
	s2, err := OpenSegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.Append([]byte("recovered"))
	s2.Close()
	recs = collectRecords(t, dir)
	if len(recs) != 5 || recs[4] != "recovered" {
		t.Fatalf("post-recovery records = %v", recs)
	}
}

func TestParseSegmentIndex(t *testing.T) {
	cases := []struct {
		name string
		idx  uint64
		ok   bool
	}{
		{"journal.000001.log", 1, true},
		{"journal.000017.log", 17, true},
		{"journal.1000000.log", 1000000, true},
		{"journal.log", 0, false},
		{"journal.000000.log", 0, false}, // index 0 is invalid
		{"journal.00001.log", 0, false},  // too short
		{"journal.abc.log", 0, false},
		{"catalog.gob", 0, false},
	}
	for _, c := range cases {
		idx, ok := ParseSegmentIndex(c.name)
		if ok != c.ok || idx != c.idx {
			t.Errorf("ParseSegmentIndex(%q) = %d,%v want %d,%v", c.name, idx, ok, c.idx, c.ok)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{CheckpointSeq: 12345, Checkpoints: []uint64{1, 2, 7}, OldestSegment: 18}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointSeq != m.CheckpointSeq || got.OldestSegment != m.OldestSegment ||
		len(got.Checkpoints) != 3 || got.Checkpoints[2] != 7 {
		t.Fatalf("manifest = %+v", got)
	}
	// Rewrite replaces atomically.
	if err := WriteManifest(dir, &Manifest{CheckpointSeq: 99999, OldestSegment: 20}); err != nil {
		t.Fatal(err)
	}
	got, err = LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointSeq != 99999 || len(got.Checkpoints) != 0 {
		t.Fatalf("rewritten manifest = %+v", got)
	}
}

func TestManifestMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	m, err := LoadManifest(dir)
	if err != nil || m != nil {
		t.Fatalf("missing manifest: %v %v", m, err)
	}
	if err := WriteManifest(dir, &Manifest{CheckpointSeq: 5, OldestSegment: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ManifestFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(ManifestFile(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest decoded")
	}
}

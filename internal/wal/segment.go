package wal

// Segmented journal: the single-file Journal grows without bound
// between snapshots, so recovery replays history rather than live
// state and compaction can only be all-or-nothing truncation. A
// Segmented journal splits the record stream into rotating segment
// files — journal.000017.log — sealed at a size or record-count
// threshold (or explicitly, by a checkpointer). Sealed segments are
// immutable; once a durable checkpoint covers every record in a
// sealed segment, CompactThrough deletes it. Recovery therefore
// replays only the segments after the last checkpoint boundary.
//
// Rotation protocol: the caller (the catalog's checkpointer) calls
// Rotate while it can guarantee no append is in flight; Rotate seals
// the active segment, fsyncs the directory so the new segment file
// survives a crash, and returns the sealed segment's index. Appends
// that race a size-triggered rotation are serialized by an RWMutex:
// appends hold the read side, rotation the write side, so a frame is
// never split across segments.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Segment file naming: journal.NNNNNN.log, NNNNNN a zero-padded
// decimal index starting at 1. Indexes grow monotonically and are
// never reused, so lexicographic order is replay order.
const (
	segmentPrefix = "journal."
	segmentSuffix = ".log"
)

// DefaultSegmentBytes seals a segment once it holds this many bytes.
const DefaultSegmentBytes = 64 << 20

// DefaultSegmentRecords seals a segment once it holds this many
// records, whichever limit trips first.
const DefaultSegmentRecords = 1 << 20

// SegmentFile returns the path of segment idx inside dir.
func SegmentFile(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", segmentPrefix, idx, segmentSuffix))
}

// ParseSegmentIndex extracts the index from a segment file name (not
// path). ok is false for names that are not segment files.
func ParseSegmentIndex(name string) (uint64, bool) {
	if len(name) < len(segmentPrefix)+len(segmentSuffix) ||
		!strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := name[len(segmentPrefix) : len(name)-len(segmentSuffix)]
	if len(mid) < 6 {
		return 0, false
	}
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || idx == 0 {
		return 0, false
	}
	return idx, true
}

// ListSegments returns the segment indexes present in dir, ascending.
// A missing directory is an empty journal.
func ListSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var idxs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := ParseSegmentIndex(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return idxs, nil
}

// SegmentedOption configures a Segmented journal at OpenSegmented.
type SegmentedOption func(*Segmented)

// WithSegmentBytes seals the active segment once it reaches n bytes.
// n <= 0 keeps the default.
func WithSegmentBytes(n int64) SegmentedOption {
	return func(s *Segmented) {
		if n > 0 {
			s.maxBytes = n
		}
	}
}

// WithSegmentRecords seals the active segment once it holds n records.
// n <= 0 keeps the default.
func WithSegmentRecords(n int64) SegmentedOption {
	return func(s *Segmented) {
		if n > 0 {
			s.maxRecords = n
		}
	}
}

// WithSegmentBatchWindow forwards the group-commit straggler window to
// each segment's underlying Journal.
func WithSegmentBatchWindow(d time.Duration) SegmentedOption {
	return func(s *Segmented) { s.batchWindow = d }
}

// Segmented is a rotating, compactable journal over a directory of
// segment files. It implements Appender; appends go to the active
// (highest-index) segment with the same group-commit and durability
// contract as Journal. Safe for concurrent use.
type Segmented struct {
	dir         string
	maxBytes    int64
	maxRecords  int64
	batchWindow time.Duration

	// rot guards the active-segment swap: appends and most other
	// operations hold the read side, rotation and compaction the write
	// side. The inner Journal provides its own serialization for the
	// actual writes.
	rot     sync.RWMutex
	active  *Journal
	idx     uint64 // active segment index
	records int64  // records in the active segment
	closed  bool

	// Accumulated counters from sealed segments, folded into Stats()
	// together with the active journal's.
	sealed    StatsSnapshot
	rotations atomic.Int64
	compacted atomic.Int64

	fsyncObs FsyncObserver
	batchObs FsyncObserver
}

// OpenSegmented opens (creating if necessary) the segmented journal in
// dir: the highest-index existing segment becomes the active one, or
// journal.000001.log is created. The caller is responsible for having
// replayed existing segments (and truncated any torn tail in the last
// one) first — the active segment is opened with O_APPEND, exactly
// like Open.
func OpenSegmented(dir string, opts ...SegmentedOption) (*Segmented, error) {
	s := &Segmented{
		dir:        dir,
		maxBytes:   DefaultSegmentBytes,
		maxRecords: DefaultSegmentRecords,
	}
	for _, o := range opts {
		o(s)
	}
	idxs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	s.idx = 1
	if n := len(idxs); n > 0 {
		s.idx = idxs[n-1]
	}
	j, err := Open(SegmentFile(dir, s.idx), WithBatchWindow(s.batchWindow))
	if err != nil {
		return nil, err
	}
	s.active = j
	// Record count of a reopened segment is unknown without a replay;
	// the byte threshold still bounds it, and the first rotation resets
	// the count. Undercounting only delays a rotation, never corrupts.
	return s, nil
}

// Dir returns the directory holding the segments.
func (s *Segmented) Dir() string { return s.dir }

// ActiveIndex returns the index of the segment currently accepting
// appends.
func (s *Segmented) ActiveIndex() uint64 {
	s.rot.RLock()
	defer s.rot.RUnlock()
	return s.idx
}

// ActivePath returns the path of the active segment file.
func (s *Segmented) ActivePath() string {
	s.rot.RLock()
	defer s.rot.RUnlock()
	return SegmentFile(s.dir, s.idx)
}

// Append implements Appender.
func (s *Segmented) Append(data []byte) error {
	return s.Enqueue(data).Wait()
}

// AppendBatch implements Appender.
func (s *Segmented) AppendBatch(records [][]byte) error {
	return s.EnqueueBatch(records).Wait()
}

// Enqueue implements Appender. The rotation read-lock is held from
// Enqueue until the ticket resolves, so the active segment cannot be
// sealed (synced, closed) out from under a queued-but-uncommitted
// frame — the same critical section Append always had, split at the
// enqueue/wait boundary. The ticket must be waited on or the journal
// can never rotate again.
func (s *Segmented) Enqueue(data []byte) *Ticket {
	return s.enqueue(func(j *Journal) *Ticket { return j.Enqueue(data) }, 1)
}

// EnqueueBatch implements Appender.
func (s *Segmented) EnqueueBatch(records [][]byte) *Ticket {
	if len(records) == 0 {
		return ErrTicket(nil)
	}
	return s.enqueue(func(j *Journal) *Ticket { return j.EnqueueBatch(records) }, int64(len(records)))
}

func (s *Segmented) enqueue(enq func(*Journal) *Ticket, n int64) *Ticket {
	s.rot.RLock()
	if s.closed {
		s.rot.RUnlock()
		return ErrTicket(ErrClosed)
	}
	j := s.active
	inner := enq(j)
	return &Ticket{wait: func() error {
		err := inner.Wait()
		if err == nil {
			atomic.AddInt64(&s.records, n)
		}
		full := err == nil && (j.Size() >= s.maxBytes || atomic.LoadInt64(&s.records) >= s.maxRecords)
		s.rot.RUnlock()
		if full {
			// Opportunistic size-triggered rotation. Losing the race to a
			// concurrent appender or an explicit Rotate is fine — rotateFrom
			// re-checks the active index under the write lock.
			s.rotateFrom(j)
		}
		return err
	}}
}

// DurableBoundary reports the active segment's index and its durable
// byte size — the last fully-acknowledged record boundary. A
// replication feed reads sealed segments whole and the active segment
// only up to this boundary, so it never ships bytes that a
// crash-then-rollback could retract.
func (s *Segmented) DurableBoundary() (idx uint64, size int64) {
	s.rot.RLock()
	defer s.rot.RUnlock()
	return s.idx, s.active.Size()
}

// rotateFrom seals the active segment if it is still `from` — a
// no-op when someone else rotated first.
func (s *Segmented) rotateFrom(from *Journal) {
	s.rot.Lock()
	defer s.rot.Unlock()
	if s.closed || s.active != from {
		return
	}
	s.rotateLocked()
}

// Rotate seals the active segment and opens the next one, returning
// the sealed segment's index. After Rotate returns, every record
// appended before the call lives in a segment <= the returned index,
// and every record appended after lives in a later one — the boundary
// a checkpointer needs: records captured by a checkpoint at this
// boundary are exactly the compactable prefix.
func (s *Segmented) Rotate() (uint64, error) {
	s.rot.Lock()
	defer s.rot.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	sealedIdx := s.idx
	if err := s.rotateLocked(); err != nil {
		return 0, err
	}
	return sealedIdx, nil
}

// rotateLocked seals s.active and opens segment idx+1. Assumes the
// write side of s.rot is held. On failure the active segment stays in
// place — rotation is advisory, appends continue into the old segment.
func (s *Segmented) rotateLocked() error {
	old := s.active
	next, err := Open(SegmentFile(s.dir, s.idx+1), WithBatchWindow(s.batchWindow))
	if err != nil {
		return err
	}
	next.SetFsyncObserver(s.fsyncObs)
	next.SetBatchObserver(s.batchObs)
	// Make the new segment file itself durable before any record lands
	// in it: a crash right after rotation must still find the file so
	// recovery's segment scan sees a contiguous sequence.
	if err := syncDir(s.dir); err != nil {
		next.Close()
		os.Remove(SegmentFile(s.dir, s.idx+1))
		return err
	}
	// Seal: sync and close the outgoing segment, fold its counters.
	if err := old.Sync(); err != nil {
		next.Close()
		os.Remove(SegmentFile(s.dir, s.idx+1))
		return err
	}
	st := old.Stats()
	s.sealed.Appends += st.Appends
	s.sealed.BytesAppended += st.BytesAppended
	s.sealed.Syncs += st.Syncs
	s.sealed.Resets += st.Resets
	s.sealed.AppendErrors += st.AppendErrors
	s.sealed.Batches += st.Batches
	old.Close()
	s.active = next
	s.idx++
	atomic.StoreInt64(&s.records, 0)
	s.rotations.Add(1)
	return nil
}

// CompactThrough deletes every sealed segment with index <= through.
// The caller must hold a durable checkpoint covering every record in
// those segments. The active segment is never deleted, even if its
// index qualifies. Returns the number of segments removed.
func (s *Segmented) CompactThrough(through uint64) (int, error) {
	s.rot.RLock()
	activeIdx := s.idx
	closed := s.closed
	s.rot.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	idxs, err := ListSegments(s.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, idx := range idxs {
		if idx > through || idx >= activeIdx {
			break
		}
		if err := os.Remove(SegmentFile(s.dir, idx)); err != nil {
			return removed, fmt.Errorf("wal: compact segment %d: %w", idx, err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(s.dir); err != nil {
			return removed, err
		}
		s.compacted.Add(int64(removed))
	}
	return removed, nil
}

// Reset implements Appender: delete every sealed segment and truncate
// the active one — the segmented equivalent of truncating a single
// journal after a full snapshot. The caller must ensure no append is
// in flight.
func (s *Segmented) Reset() error {
	s.rot.Lock()
	defer s.rot.Unlock()
	if s.closed {
		return ErrClosed
	}
	idxs, err := ListSegments(s.dir)
	if err != nil {
		return err
	}
	for _, idx := range idxs {
		if idx >= s.idx {
			continue
		}
		if err := os.Remove(SegmentFile(s.dir, idx)); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
		s.compacted.Add(1)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	atomic.StoreInt64(&s.records, 0)
	return s.active.Reset()
}

// Sync implements Appender.
func (s *Segmented) Sync() error {
	s.rot.RLock()
	defer s.rot.RUnlock()
	if s.closed {
		return nil
	}
	return s.active.Sync()
}

// Close implements Appender.
func (s *Segmented) Close() error {
	s.rot.Lock()
	defer s.rot.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.active.Close()
}

// Stats implements Appender: counters accumulated across every
// segment this process wrote, plus rotation/compaction counts.
func (s *Segmented) Stats() StatsSnapshot {
	s.rot.RLock()
	st := s.active.Stats()
	sealed := s.sealed
	s.rot.RUnlock()
	st.Appends += sealed.Appends
	st.BytesAppended += sealed.BytesAppended
	st.Syncs += sealed.Syncs
	st.Resets += sealed.Resets
	st.AppendErrors += sealed.AppendErrors
	st.Batches += sealed.Batches
	st.Rotations = s.rotations.Load()
	st.SegmentsCompacted = s.compacted.Load()
	return st
}

// SetFsyncObserver forwards the fsync observer to the active segment
// and to every segment opened by future rotations.
func (s *Segmented) SetFsyncObserver(obs FsyncObserver) {
	s.rot.Lock()
	defer s.rot.Unlock()
	s.fsyncObs = obs
	if s.active != nil {
		s.active.SetFsyncObserver(obs)
	}
}

// SetBatchObserver forwards the batch observer likewise.
func (s *Segmented) SetBatchObserver(obs FsyncObserver) {
	s.rot.Lock()
	defer s.rot.Unlock()
	s.batchObs = obs
	if s.active != nil {
		s.active.SetBatchObserver(obs)
	}
}

// SegmentReplay reports one segment's replay outcome.
type SegmentReplay struct {
	Index uint64
	ReplayResult
}

// ReplaySegments replays every segment in dir in index order, calling
// fn for each intact record. A torn tail in the last segment is the
// normal crash signature; a tear in an earlier (sealed) segment
// indicates corruption, is reported the same way, and replay continues
// with the following segments — records lost to a mid-segment tear
// surface as replay errors downstream rather than being silently
// skipped. The per-segment results let the caller truncate the tail
// tear before reopening for appends.
func ReplaySegments(dir string, fn func(data []byte) error) ([]SegmentReplay, error) {
	idxs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []SegmentReplay
	for _, idx := range idxs {
		res, err := Replay(SegmentFile(dir, idx), fn)
		out = append(out, SegmentReplay{Index: idx, ReplayResult: res})
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// syncDir fsyncs a directory so segment create/remove operations are
// durable. Kept local so the wal package stays dependency-free.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return nil
}

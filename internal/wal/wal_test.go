package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.log")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	res, err := Replay(path, func(data []byte) error {
		got = append(got, append([]byte(nil), data...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.Records != 10 {
		t.Fatalf("replay = %+v", res)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	res, err := Replay(journalPath(t), func([]byte) error {
		t.Fatal("callback on missing journal")
		return nil
	})
	if err != nil || res.Records != 0 || res.Torn {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path)
	j.Append([]byte("intact-1"))
	j.Append([]byte("intact-2"))
	j.Append([]byte("doomed"))
	j.Close()

	// Chop mid-way through the last record, as a crash mid-append
	// would.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	var got int
	res, err := Replay(path, func([]byte) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 || res.Records != 2 || !res.Torn {
		t.Fatalf("got=%d res=%+v", got, res)
	}
}

// TestTruncateAtEnablesAppendAfterTear covers the double-crash
// scenario: a torn tail must be cut off before the journal is reopened
// for appending, or records appended after recovery land past the
// garbage and are dropped by the next replay.
func TestTruncateAtEnablesAppendAfterTear(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path)
	j.Append([]byte("intact"))
	j.Append([]byte("doomed"))
	j.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(path, func([]byte) error { return nil })
	if err != nil || !res.Torn {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if err := TruncateAt(path, res.TornOffset); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	var got []string
	res2, err := Replay(path, func(d []byte) error { got = append(got, string(d)); return nil })
	if err != nil || res2.Torn {
		t.Fatalf("res=%+v err=%v", res2, err)
	}
	if len(got) != 2 || got[0] != "intact" || got[1] != "after-recovery" {
		t.Fatalf("got = %q (post-recovery append lost to old tear?)", got)
	}
}

func TestTruncateAtMissingFileIsNoOp(t *testing.T) {
	if err := TruncateAt(journalPath(t), 0); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCorruptRecordStops(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path)
	j.Append([]byte("good"))
	j.Append([]byte("soon to be bad"))
	j.Close()

	// Flip a payload byte in the second record.
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	var got int
	res, _ := Replay(path, func([]byte) error { got++; return nil })
	if got != 1 || !res.Torn {
		t.Fatalf("got=%d res=%+v", got, res)
	}
}

func TestResetTruncates(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path)
	j.Append([]byte("pre-snapshot"))
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("post-snapshot"))
	j.Close()

	var got [][]byte
	Replay(path, func(d []byte) error { got = append(got, append([]byte(nil), d...)); return nil })
	if len(got) != 1 || string(got[0]) != "post-snapshot" {
		t.Fatalf("got = %q", got)
	}

	s := j.Stats()
	if s.Appends != 2 || s.Resets != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAppendAfterClose(t *testing.T) {
	j, _ := Open(journalPath(t))
	j.Close()
	if err := j.Append([]byte("x")); err != ErrClosed {
		t.Errorf("err = %v", err)
	}
	if s := j.Stats(); s.AppendErrors != 1 {
		t.Errorf("append errors = %d", s.AppendErrors)
	}
}

func TestReplayRejectsGiantLength(t *testing.T) {
	path := journalPath(t)
	// Hand-craft a frame whose length field is absurd.
	frame := make([]byte, 12)
	frame[0], frame[1], frame[2], frame[3] = 0x57, 0x41, 0x4C, 0x31
	frame[4], frame[5], frame[6], frame[7] = 0xFF, 0xFF, 0xFF, 0xFF
	os.WriteFile(path, frame, 0o644)
	res, err := Replay(path, func([]byte) error { t.Fatal("applied"); return nil })
	if err != nil || !res.Torn {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

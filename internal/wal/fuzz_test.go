package wal

import (
	"bytes"
	"testing"
)

// frameBytes builds a valid log image from payloads (test helper for
// corpus seeding).
func frameBytes(payloads ...[]byte) []byte {
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	return buf
}

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. The
// invariants: never panic, never hand fn a record that fails its CRC,
// and on a well-formed prefix report exactly the records the prefix
// holds with the tear at the first damaged byte's frame.
func FuzzFrameDecode(f *testing.F) {
	valid := frameBytes([]byte("hello"), []byte(""), bytes.Repeat([]byte{0xAB}, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])     // torn tail mid-payload
	f.Add(valid[:frameHeaderLen-2]) // torn header
	f.Add([]byte{})                 // empty log
	f.Add([]byte("not a journal at all"))
	flipped := append([]byte(nil), valid...)
	flipped[frameHeaderLen+2] ^= 0x40 // corrupt first payload
	f.Add(flipped)
	giant := frameBytes([]byte("x"))
	giant[5] = 0xFF // absurd length field
	f.Add(giant)

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded [][]byte
		res, err := replayReader(bytes.NewReader(data), func(d []byte) error {
			decoded = append(decoded, append([]byte(nil), d...))
			return nil
		})
		if err != nil {
			t.Fatalf("fn never errors, replay did: %v", err)
		}
		if res.Records != len(decoded) {
			t.Fatalf("res.Records=%d but fn saw %d", res.Records, len(decoded))
		}
		// Every decoded record must round-trip: re-encoding the
		// decoded prefix reproduces the input bytes up to the tear.
		re := frameBytes(decoded...)
		if !bytes.HasPrefix(data, re) {
			t.Fatalf("decoded records do not re-encode to the input prefix")
		}
		if res.Torn && res.TornOffset != int64(len(re)) {
			t.Fatalf("tear at %d, decoded prefix ends at %d", res.TornOffset, len(re))
		}
		if !res.Torn && len(re) != len(data) {
			t.Fatalf("clean end but %d trailing bytes undecoded", len(data)-len(re))
		}
	})
}

// FuzzFrameCorruption mutates one byte of a valid log and asserts the
// CRC (or framing) rejects the damaged record: replay must either
// tear at or before the mutated frame, never deliver altered payload
// bytes as intact.
func FuzzFrameCorruption(f *testing.F) {
	f.Add(0, byte(0x01))
	f.Add(5, byte(0x80))
	f.Add(13, byte(0xFF))
	f.Fuzz(func(t *testing.T, pos int, mask byte) {
		payloads := [][]byte{[]byte("first-record"), []byte("second-record")}
		img := frameBytes(payloads...)
		if mask == 0 {
			return // not a mutation
		}
		pos %= len(img)
		if pos < 0 {
			pos += len(img)
		}
		img[pos] ^= mask

		var decoded [][]byte
		res, _ := replayReader(bytes.NewReader(img), func(d []byte) error {
			decoded = append(decoded, append([]byte(nil), d...))
			return nil
		})
		if !res.Torn {
			t.Fatalf("single-byte corruption at %d not detected", pos)
		}
		// Records before the damaged frame may survive; any delivered
		// record must match the original payload exactly.
		for i, d := range decoded {
			if !bytes.Equal(d, payloads[i]) {
				t.Fatalf("record %d delivered mutated: %q", i, d)
			}
		}
	})
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder:
// it must never panic, never allocate past MaxManifestLen, and a
// manifest it accepts must re-encode to an equivalent manifest
// (decode∘encode is the identity on accepted inputs).
func FuzzManifestDecode(f *testing.F) {
	seed, _ := EncodeManifest(&Manifest{CheckpointSeq: 42, Checkpoints: []uint64{1, 3}, OldestSegment: 9})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(manifestMagic[:])
	short := append([]byte(nil), seed...)
	f.Add(short[:len(short)-4]) // truncated payload
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-2] ^= 0x20 // corrupt payload byte
	f.Add(flipped)
	huge := append([]byte(nil), seed...)
	huge[8], huge[9] = 0xFF, 0xFF // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		re, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest fails re-encode: %v", err)
		}
		m2, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest fails decode: %v", err)
		}
		if m2.CheckpointSeq != m.CheckpointSeq || m2.OldestSegment != m.OldestSegment ||
			len(m2.Checkpoints) != len(m.Checkpoints) {
			t.Fatalf("round trip diverged: %+v vs %+v", m, m2)
		}
	})
}

package wal

// The MANIFEST file records where recovery starts: which sequence
// number the last durable checkpoint covers, which incremental
// checkpoint files extend the base snapshot, and the oldest WAL
// segment that may still hold uncheckpointed records. Recovery reads
// the manifest first, then the base snapshot, then the checkpoint
// chain, then replays surviving segments — so startup cost is bounded
// by live state plus the uncheckpointed tail, not by mutation history.
//
// File layout (everything after the header is one JSON document):
//
//	magic   [8]byte  "TBMMANI1"
//	length  uint32   JSON payload length
//	crc     uint32   CRC-32C over the payload
//	payload [length]byte
//
// The manifest is tiny and rewritten whole on every checkpoint via
// tmp + fsync + rename + directory fsync, so a crash leaves either the
// old manifest or the new one, never a torn file. A corrupt or missing
// manifest is recoverable: replaying every segment over the base
// snapshot is always safe (sequence numbers dedupe), it just costs
// time — so decode failures degrade to the conservative path rather
// than refusing to start.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const manifestName = "MANIFEST"

var manifestMagic = [8]byte{'T', 'B', 'M', 'M', 'A', 'N', 'I', '1'}

const manifestHeaderLen = 8 + 4 + 4 // magic + length + crc

// MaxManifestLen bounds the JSON payload so a corrupt length field
// cannot drive an unbounded allocation.
const MaxManifestLen = 16 << 20

// ErrManifestCorrupt reports a manifest that failed framing or JSON
// validation.
var ErrManifestCorrupt = errors.New("wal: corrupt manifest")

// Manifest describes the durable recovery state of a database
// directory.
type Manifest struct {
	// CheckpointSeq is the last mutation sequence number covered by the
	// base snapshot plus the checkpoint chain. Journal records with
	// Seq <= CheckpointSeq are superseded.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Checkpoints lists the incremental checkpoint file numbers to
	// apply over the base snapshot, in order. Empty after a full
	// snapshot.
	Checkpoints []uint64 `json:"checkpoints,omitempty"`
	// OldestSegment is the lowest WAL segment index that may still hold
	// records newer than CheckpointSeq. Segments below it are fully
	// superseded and are deleted by compaction (possibly after a crash
	// left them behind — replaying them anyway is harmless).
	OldestSegment uint64 `json:"oldest_segment"`
}

// ManifestFile returns the manifest path inside a database directory.
func ManifestFile(dir string) string { return filepath.Join(dir, manifestName) }

// EncodeManifest frames m for durable storage.
func EncodeManifest(m *Manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wal: encode manifest: %w", err)
	}
	out := make([]byte, manifestHeaderLen+len(payload))
	copy(out, manifestMagic[:])
	binary.BigEndian.PutUint32(out[8:], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[12:], crc32.Checksum(payload, castagnoli))
	copy(out[manifestHeaderLen:], payload)
	return out, nil
}

// DecodeManifest validates a manifest frame and returns the manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < manifestHeaderLen || [8]byte(data[:8]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrManifestCorrupt)
	}
	n := binary.BigEndian.Uint32(data[8:])
	if n > MaxManifestLen || uint64(len(data)) != uint64(manifestHeaderLen)+uint64(n) {
		return nil, fmt.Errorf("%w: length %d, file holds %d payload bytes",
			ErrManifestCorrupt, n, len(data)-manifestHeaderLen)
	}
	payload := data[manifestHeaderLen:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(data[12:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrManifestCorrupt, got, want)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	for i := 1; i < len(m.Checkpoints); i++ {
		if m.Checkpoints[i] <= m.Checkpoints[i-1] {
			return nil, fmt.Errorf("%w: checkpoint chain not ascending", ErrManifestCorrupt)
		}
	}
	return &m, nil
}

// WriteManifest durably replaces dir's manifest: tmp write, fsync,
// rename, directory fsync.
func WriteManifest(dir string, m *Manifest) error {
	data, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	path := ManifestFile(dir)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest. A missing file returns (nil, nil):
// the caller takes the conservative full-replay path. A corrupt file
// returns ErrManifestCorrupt; callers may likewise degrade to full
// replay after quarantining it.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(ManifestFile(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	return DecodeManifest(data)
}

package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppendsAllDurable drives many goroutines through
// Append and verifies every acknowledged record is intact on replay —
// group commit must not reorder bytes within a frame, drop a queued
// record, or ack before its batch's fsync.
func TestConcurrentAppendsAllDurable(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path, WithBatchWindow(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	got := map[string]bool{}
	res, err := Replay(path, func(d []byte) error { got[string(d)] = true; return nil })
	if err != nil || res.Torn {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if res.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", res.Records, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if !got[fmt.Sprintf("w%d-%d", w, i)] {
				t.Fatalf("record w%d-%d missing", w, i)
			}
		}
	}
	s := j.Stats()
	if s.Appends != writers*perWriter {
		t.Errorf("appends = %d, want %d", s.Appends, writers*perWriter)
	}
	if s.Batches < 1 || s.Batches > s.Appends {
		t.Errorf("batches = %d out of range (appends %d)", s.Batches, s.Appends)
	}
}

// TestGroupCommitCoalesces checks that simultaneous appenders share
// fsyncs: with a generous straggler window, 8 concurrent appends must
// land in strictly fewer batches than records.
func TestGroupCommitCoalesces(t *testing.T) {
	j, err := Open(journalPath(t), WithBatchWindow(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const writers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			if err := j.Append([]byte{byte(w)}); err != nil {
				t.Errorf("append: %v", err)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	s := j.Stats()
	if s.Appends != writers {
		t.Fatalf("appends = %d", s.Appends)
	}
	if s.Batches >= writers {
		t.Errorf("batches = %d, want < %d (no coalescing happened)", s.Batches, writers)
	}
}

// TestSingleWriterNoWindowWait: a solitary appender must not sleep the
// batch window. 10 sequential appends under a huge window finishing
// quickly is the observable contract.
func TestSingleWriterNoWindowWait(t *testing.T) {
	j, err := Open(journalPath(t), WithBatchWindow(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte("solo")); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("10 sequential appends took %v — leader is sleeping the window without concurrency", d)
	}
	if s := j.Stats(); s.Appends != 10 || s.Batches != 10 {
		t.Errorf("stats = %+v, want 10 appends in 10 batches", s)
	}
}

// TestAppendBatchRoundTrip: AppendBatch writes every record in order
// under one batch/fsync, and an empty batch is a no-op.
func TestAppendBatchRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := j.AppendBatch([][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	var got []string
	res, err := Replay(path, func(d []byte) error { got = append(got, string(d)); return nil })
	if err != nil || res.Torn || res.Records != 3 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if got[0] != "a" || got[1] != "bb" || got[2] != "ccc" {
		t.Fatalf("got = %q", got)
	}
	s := j.Stats()
	if s.Appends != 3 || s.Batches != 1 || s.Syncs != 1 {
		t.Errorf("stats = %+v, want 3 appends / 1 batch / 1 sync", s)
	}
}

// TestAppendBatchAfterClose: the whole batch fails with ErrClosed and
// every record counts as an append error.
func TestAppendBatchAfterClose(t *testing.T) {
	j, _ := Open(journalPath(t))
	j.Close()
	if err := j.AppendBatch([][]byte{[]byte("x"), []byte("y")}); err != ErrClosed {
		t.Errorf("err = %v", err)
	}
	if s := j.Stats(); s.AppendErrors != 2 {
		t.Errorf("append errors = %d", s.AppendErrors)
	}
}

// batchSizeRecorder captures SetBatchObserver observations.
type batchSizeRecorder struct {
	mu    sync.Mutex
	sizes []int
}

func (r *batchSizeRecorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.sizes = append(r.sizes, int(d/time.Microsecond))
	r.mu.Unlock()
}

// TestBatchObserverSeesRecordCounts: the observer receives one
// observation per commit, encoding the record count on the µs scale.
func TestBatchObserverSeesRecordCounts(t *testing.T) {
	j, err := Open(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec := &batchSizeRecorder{}
	j.SetBatchObserver(rec)
	j.Append([]byte("one"))
	j.AppendBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.sizes) != 2 || rec.sizes[0] != 1 || rec.sizes[1] != 3 {
		t.Errorf("observed sizes = %v, want [1 3]", rec.sizes)
	}
}

// TestConcurrentAppendBatchAtomic interleaves AppendBatch calls from
// several goroutines and verifies each batch's records are contiguous
// in the log — group commit must never interleave two batches' frames.
func TestConcurrentAppendBatchAtomic(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path, WithBatchWindow(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const writers, batchLen = 6, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var recs [][]byte
			for i := 0; i < batchLen; i++ {
				recs = append(recs, []byte(fmt.Sprintf("w%d-%d", w, i)))
			}
			if err := j.AppendBatch(recs); err != nil {
				t.Errorf("batch: %v", err)
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	var order []string
	res, _ := Replay(path, func(d []byte) error { order = append(order, string(d)); return nil })
	if res.Records != writers*batchLen {
		t.Fatalf("records = %d", res.Records)
	}
	for i := 0; i < len(order); i += batchLen {
		var w byte = order[i][1]
		for k := 0; k < batchLen; k++ {
			want := fmt.Sprintf("w%c-%d", w, k)
			if order[i+k] != want {
				t.Fatalf("batch frames interleaved at %d: got %q want %q (full: %q)", i+k, order[i+k], want, order)
			}
		}
	}
}

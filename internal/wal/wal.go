// Package wal implements a write-ahead mutation journal: fsynced,
// checksummed, length-prefixed records appended to a single log file.
// The catalog journals every mutation between snapshots, so an HTTP
// edit made seconds before a kill -9 survives the restart — the
// journal is replayed over the last snapshot and then truncated at the
// next successful save.
//
// Record frame:
//
//	magic  uint32  0x57414C31 ("WAL1")
//	length uint32  payload length in bytes
//	crc    uint32  CRC-32C over the payload
//	payload [length]byte
//
// Replay stops cleanly at the first incomplete or corrupt record: a
// crash mid-append leaves a torn tail, which is expected and reported,
// not an error. Records before the tear are intact (each append is
// fsynced before the mutation is acknowledged). Recovery must truncate
// the tear away (TruncateAt) before reopening the journal for appends,
// or new records would land after the garbage and be lost to the next
// replay.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const recordMagic = 0x57414C31 // "WAL1"

const frameHeaderLen = 12 // magic + length + crc

// MaxRecordLen bounds a single record so a corrupt length field cannot
// drive a multi-gigabyte allocation during replay.
const MaxRecordLen = 64 << 20

// ErrClosed reports an append to a closed journal.
var ErrClosed = errors.New("wal: journal closed")

// ErrFailed reports a journal that could not truncate away a failed
// append: later records would land after the partial frame and be
// discarded as the torn tail on replay, so the journal refuses writes
// until a Reset succeeds.
var ErrFailed = errors.New("wal: journal failed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats holds the journal's monotonic counters.
type Stats struct {
	Appends       atomic.Int64
	BytesAppended atomic.Int64
	Syncs         atomic.Int64
	Resets        atomic.Int64
	AppendErrors  atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats, JSON-friendly for
// /metrics.
type StatsSnapshot struct {
	Appends       int64 `json:"appends"`
	BytesAppended int64 `json:"bytes_appended"`
	Syncs         int64 `json:"syncs"`
	Resets        int64 `json:"resets"`
	AppendErrors  int64 `json:"append_errors"`
}

// Appender is the mutation-journal surface the catalog writes to.
// *Journal implements it; fault-injection wrappers do too.
type Appender interface {
	// Append durably adds one record (write + fsync).
	Append(data []byte) error
	// Reset truncates the journal after a successful snapshot.
	Reset() error
	// Sync flushes without appending (used at shutdown).
	Sync() error
	// Close releases the file handle.
	Close() error
	// Stats returns a snapshot of the journal counters.
	Stats() StatsSnapshot
}

// FsyncObserver receives the wall time of each fsync the journal
// issues. telemetry.*Histogram satisfies it; the local interface keeps
// this package dependency-free. Callers that only hold an Appender
// can type-assert for the SetFsyncObserver method, so fault-injection
// wrappers that don't forward it are simply unobserved.
type FsyncObserver interface {
	Observe(d time.Duration)
}

// Journal is an append-only record log. Safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	// size is the length of the last fully-acknowledged record
	// boundary; a failed append truncates back to it.
	size     int64
	failed   error
	path     string
	stats    Stats
	fsyncObs FsyncObserver
}

// SetFsyncObserver installs obs to receive the latency of every fsync
// (from Append and Sync, successful or not).
func (j *Journal) SetFsyncObserver(obs FsyncObserver) {
	j.mu.Lock()
	j.fsyncObs = obs
	j.mu.Unlock()
}

// syncLocked fsyncs the file and reports the latency. Assumes j.mu is
// held.
func (j *Journal) syncLocked() error {
	start := time.Now()
	err := j.f.Sync()
	if j.fsyncObs != nil {
		j.fsyncObs.Observe(time.Since(start))
	}
	return err
}

// Open opens (creating if necessary) the journal at path for
// appending.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Journal{f: f, path: path, size: fi.Size()}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append implements Appender. The record is on stable storage when
// Append returns nil.
func (j *Journal) Append(data []byte) error {
	frame := make([]byte, frameHeaderLen+len(data))
	binary.BigEndian.PutUint32(frame, recordMagic)
	binary.BigEndian.PutUint32(frame[4:], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[8:], crc32.Checksum(data, castagnoli))
	copy(frame[frameHeaderLen:], data)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.stats.AppendErrors.Add(1)
		return ErrClosed
	}
	if j.failed != nil {
		j.stats.AppendErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrFailed, j.failed)
	}
	if _, err := j.f.Write(frame); err != nil {
		j.stats.AppendErrors.Add(1)
		j.rollbackLocked()
		return fmt.Errorf("wal: %w", err)
	}
	if err := j.syncLocked(); err != nil {
		j.stats.AppendErrors.Add(1)
		j.rollbackLocked()
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.size += int64(len(frame))
	j.stats.Appends.Add(1)
	j.stats.BytesAppended.Add(int64(len(frame)))
	j.stats.Syncs.Add(1)
	return nil
}

// rollbackLocked truncates away the bytes of a failed append so the
// next record lands at a record boundary — a partial frame left
// mid-log would be taken for the torn tail on replay, discarding
// every acknowledged record after it. O_APPEND makes the next write
// resume at the truncated end. If the truncate itself fails the
// journal is marked failed and refuses further appends: better
// unavailable than silently lossy.
func (j *Journal) rollbackLocked() {
	if err := j.f.Truncate(j.size); err != nil {
		j.failed = fmt.Errorf("rollback truncate: %v", err)
	}
}

// Reset implements Appender: truncate to zero after a snapshot has
// captured everything the journal held.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.size = 0
	j.failed = nil // the log is demonstrably clean again
	j.stats.Resets.Add(1)
	return nil
}

// Sync implements Appender.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.syncLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.stats.Syncs.Add(1)
	return nil
}

// Close implements Appender.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Stats implements Appender.
func (j *Journal) Stats() StatsSnapshot {
	return StatsSnapshot{
		Appends:       j.stats.Appends.Load(),
		BytesAppended: j.stats.BytesAppended.Load(),
		Syncs:         j.stats.Syncs.Load(),
		Resets:        j.stats.Resets.Load(),
		AppendErrors:  j.stats.AppendErrors.Load(),
	}
}

// ReplayResult reports what a Replay pass found.
type ReplayResult struct {
	// Records is the number of intact records handed to fn.
	Records int
	// Torn is true when the log ends in an incomplete or corrupt
	// record — the signature of a crash mid-append. Everything before
	// the tear was replayed.
	Torn bool
	// TornOffset is the byte offset of the tear when Torn.
	TornOffset int64
}

// Replay reads the journal at path and calls fn for each intact
// record in order. A missing file is an empty journal. Replay stops
// at a torn tail (reported via ReplayResult, not an error); an error
// from fn aborts the replay and is returned.
func Replay(path string, fn func(data []byte) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	var off int64
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			res.Torn, res.TornOffset = true, off
			return res, nil // torn header
		}
		if binary.BigEndian.Uint32(hdr) != recordMagic {
			res.Torn, res.TornOffset = true, off
			return res, nil
		}
		n := binary.BigEndian.Uint32(hdr[4:])
		if n > MaxRecordLen {
			res.Torn, res.TornOffset = true, off
			return res, nil
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(f, data); err != nil {
			res.Torn, res.TornOffset = true, off
			return res, nil // torn payload
		}
		if crc32.Checksum(data, castagnoli) != binary.BigEndian.Uint32(hdr[8:]) {
			res.Torn, res.TornOffset = true, off
			return res, nil // corrupt payload
		}
		if err := fn(data); err != nil {
			return res, err
		}
		res.Records++
		off += int64(frameHeaderLen) + int64(n)
	}
}

// TruncateAt cuts the journal at path down to off — the tear offset
// Replay reported — and fsyncs it, so appends after a torn-tail
// recovery resume at a clean record boundary. The bytes past the tear
// are unreadable by definition; left in place, a journal reopened with
// O_APPEND would write acknowledged records after them, and the next
// replay would stop at the old tear and drop every one. A missing file
// is a no-op.
func TruncateAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

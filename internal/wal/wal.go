// Package wal implements a write-ahead mutation journal: fsynced,
// checksummed, length-prefixed records appended to a single log file.
// The catalog journals every mutation between snapshots, so an HTTP
// edit made seconds before a kill -9 survives the restart — the
// journal is replayed over the last snapshot and then truncated at the
// next successful save.
//
// Record frame:
//
//	magic  uint32  0x57414C31 ("WAL1")
//	length uint32  payload length in bytes
//	crc    uint32  CRC-32C over the payload
//	payload [length]byte
//
// Replay stops cleanly at the first incomplete or corrupt record: a
// crash mid-append leaves a torn tail, which is expected and reported,
// not an error. Records before the tear are intact (each append is
// fsynced before the mutation is acknowledged). Recovery must truncate
// the tear away (TruncateAt) before reopening the journal for appends,
// or new records would land after the garbage and be lost to the next
// replay.
//
// # Group commit
//
// Append is a group commit: concurrent callers enqueue their frames
// and the first to take the leader token becomes the leader, writing
// every queued frame with a single write + fsync and acknowledging all
// of them at once. Throughput under concurrent writers therefore
// scales with the batch size rather than being capped at one fsync
// per record, while a lone writer still pays exactly one write + one
// fsync with no added latency. WithBatchWindow bounds how long a
// leader waits for stragglers that are mid-Append but not yet queued;
// it never delays a solitary appender. Batches keep the per-record
// durability contract: a batch either wholly acks (every record is on
// stable storage) or wholly rolls back (the file is truncated to the
// last acknowledged boundary and every caller gets the error).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const recordMagic = 0x57414C31 // "WAL1"

const frameHeaderLen = 12 // magic + length + crc

// MaxRecordLen bounds a single record so a corrupt length field cannot
// drive a multi-gigabyte allocation during replay.
const MaxRecordLen = 64 << 20

// ErrClosed reports an append to a closed journal.
var ErrClosed = errors.New("wal: journal closed")

// ErrFailed reports a journal that could not truncate away a failed
// append: later records would land after the partial frame and be
// discarded as the torn tail on replay, so the journal refuses writes
// until a Reset succeeds.
var ErrFailed = errors.New("wal: journal failed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats holds the journal's monotonic counters.
type Stats struct {
	Appends       atomic.Int64
	BytesAppended atomic.Int64
	Syncs         atomic.Int64
	Resets        atomic.Int64
	AppendErrors  atomic.Int64
	Batches       atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats, JSON-friendly for
// /metrics. Appends counts records; Batches counts group commits
// (write+fsync cycles), so Appends/Batches is the mean batch size.
// Rotations and SegmentsCompacted stay zero for a single-file Journal;
// a Segmented journal fills them in.
type StatsSnapshot struct {
	Appends           int64 `json:"appends"`
	BytesAppended     int64 `json:"bytes_appended"`
	Syncs             int64 `json:"syncs"`
	Resets            int64 `json:"resets"`
	AppendErrors      int64 `json:"append_errors"`
	Batches           int64 `json:"batches"`
	Rotations         int64 `json:"rotations,omitempty"`
	SegmentsCompacted int64 `json:"segments_compacted,omitempty"`
}

// Appender is the mutation-journal surface the catalog writes to.
// *Journal implements it; fault-injection wrappers do too.
type Appender interface {
	// Append durably adds one record (write + fsync, possibly shared
	// with concurrent appenders via group commit).
	Append(data []byte) error
	// AppendBatch durably adds all records or none of them: the
	// records share one frame sequence, one write and one fsync, and
	// a failure rolls the whole batch back.
	AppendBatch(records [][]byte) error
	// Enqueue reserves the record's position in the log without
	// waiting for durability: the record's log offset is fixed by the
	// order of Enqueue calls, and the returned Ticket's Wait blocks
	// until the group commit lands (or fails). Append is exactly
	// Enqueue followed by Wait. The split lets a caller assign its
	// own sequence numbers and enqueue under the same lock, so log
	// order provably equals sequence order. Every Ticket MUST be
	// waited on.
	Enqueue(data []byte) *Ticket
	// EnqueueBatch is Enqueue for an atomic batch: all records take
	// consecutive log positions and share one commit outcome.
	EnqueueBatch(records [][]byte) *Ticket
	// Reset truncates the journal after a successful snapshot.
	Reset() error
	// Sync flushes without appending (used at shutdown).
	Sync() error
	// Close releases the file handle.
	Close() error
	// Stats returns a snapshot of the journal counters.
	Stats() StatsSnapshot
}

// FsyncObserver receives the wall time of each fsync the journal
// issues. telemetry.*Histogram satisfies it; the local interface keeps
// this package dependency-free. Callers that only hold an Appender
// can type-assert for the SetFsyncObserver method, so fault-injection
// wrappers that don't forward it are simply unobserved.
type FsyncObserver interface {
	Observe(d time.Duration)
}

// pending is one enqueued append awaiting a group commit: one or more
// pre-built frames plus the channel its caller blocks on.
type pending struct {
	frames []byte
	n      int // record count
	done   chan error
}

// Ticket is the handle for an enqueued-but-unacknowledged append. Wait
// blocks until the record's group commit lands and returns its
// outcome; it is idempotent and safe to call from any goroutine, but
// every ticket must be waited on at least once — an abandoned ticket
// leaks the resources (straggler accounting, rotation read-lock) that
// Enqueue reserved.
type Ticket struct {
	once sync.Once
	wait func() error
	err  error
}

// Wait blocks until the enqueued records are durable (or the commit
// failed) and returns the outcome. Repeated calls return the same
// result.
func (t *Ticket) Wait() error {
	t.once.Do(func() { t.err = t.wait() })
	return t.err
}

// ErrTicket returns a ticket that is already resolved to err — the
// shape fault-injection wrappers need to fail an enqueue before it
// reaches the real log. err may be nil (an empty batch).
func ErrTicket(err error) *Ticket {
	return &Ticket{wait: func() error { return err }}
}

// Journal is an append-only record log. Safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	// size is the length of the last fully-acknowledged record
	// boundary; a failed append truncates back to it.
	size     int64
	failed   error
	path     string
	stats    Stats
	fsyncObs FsyncObserver
	batchObs FsyncObserver

	// Group-commit state: queued appends (guarded by qmu — a separate,
	// tiny lock so Enqueue never blocks behind a leader's fsync, which
	// runs under mu), the leader token (a 1-buffered channel; its
	// holder is the batch leader), the straggler window, and a count of
	// appends currently in flight (enqueued or about to be) that the
	// leader compares against the queue length. A channel rather than
	// a mutex because followers must be able to learn their fate
	// without acquiring anything the next leader holds: they select on
	// their done channel OR the token, whichever comes first.
	qmu         sync.Mutex
	queue       []*pending
	leader      chan struct{}
	batchWindow time.Duration
	inFlight    atomic.Int32
}

// Option configures a Journal at Open.
type Option func(*Journal)

// WithBatchWindow bounds how long a group-commit leader waits for
// concurrent appenders that have entered Append but not yet queued
// their frames. Zero (the default) disables the wait; batching then
// still happens naturally while a leader's fsync is in progress. The
// window only ever applies when another append is in flight, so a
// single sequential writer never sleeps.
func WithBatchWindow(d time.Duration) Option {
	return func(j *Journal) { j.batchWindow = d }
}

// SetFsyncObserver installs obs to receive the latency of every fsync
// (from Append and Sync, successful or not).
func (j *Journal) SetFsyncObserver(obs FsyncObserver) {
	j.mu.Lock()
	j.fsyncObs = obs
	j.mu.Unlock()
}

// SetBatchObserver installs obs to receive the size of each committed
// group-commit batch. Sizes are encoded on the microsecond scale — a
// batch of n records is observed as n·1µs — so the telemetry
// package's power-of-two duration histogram doubles as a count
// histogram (the bucket labeled 2^k µs holds batches of ≤ 2^k
// records).
func (j *Journal) SetBatchObserver(obs FsyncObserver) {
	j.mu.Lock()
	j.batchObs = obs
	j.mu.Unlock()
}

// syncLocked fsyncs the file and reports the latency. Assumes j.mu is
// held.
func (j *Journal) syncLocked() error {
	start := time.Now()
	err := j.f.Sync()
	if j.fsyncObs != nil {
		j.fsyncObs.Observe(time.Since(start))
	}
	return err
}

// Open opens (creating if necessary) the journal at path for
// appending.
func Open(path string, opts ...Option) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{f: f, path: path, size: fi.Size(), leader: make(chan struct{}, 1)}
	for _, o := range opts {
		o(j)
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size returns the length of the last fully-acknowledged record
// boundary — the journal's durable size.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// appendFrame appends one framed record to buf.
func appendFrame(buf, data []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], recordMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(data)))
	binary.BigEndian.PutUint32(hdr[8:], crc32.Checksum(data, castagnoli))
	return append(append(buf, hdr[:]...), data...)
}

// Append implements Appender. The record is on stable storage when
// Append returns nil.
func (j *Journal) Append(data []byte) error {
	return j.Enqueue(data).Wait()
}

// AppendBatch implements Appender: every record or none. An empty
// batch is a no-op.
func (j *Journal) AppendBatch(records [][]byte) error {
	return j.EnqueueBatch(records).Wait()
}

// Enqueue implements Appender: the record's log position is fixed (in
// Enqueue-call order) before Enqueue returns; the returned ticket's
// Wait runs the group-commit protocol.
func (j *Journal) Enqueue(data []byte) *Ticket {
	return j.enqueue(appendFrame(nil, data), 1)
}

// EnqueueBatch implements Appender.
func (j *Journal) EnqueueBatch(records [][]byte) *Ticket {
	if len(records) == 0 {
		return ErrTicket(nil)
	}
	total := 0
	for _, r := range records {
		total += frameHeaderLen + len(r)
	}
	buf := make([]byte, 0, total)
	for _, r := range records {
		buf = appendFrame(buf, r)
	}
	return j.enqueue(buf, len(records))
}

// enqueue reserves the frames' position in the queue. The in-flight
// count is held until the ticket resolves so a leader's straggler
// window keeps covering enqueued-but-unwaited tickets.
func (j *Journal) enqueue(frames []byte, n int) *Ticket {
	p := &pending{frames: frames, n: n, done: make(chan error, 1)}
	j.inFlight.Add(1)
	j.qmu.Lock()
	j.queue = append(j.queue, p)
	j.qmu.Unlock()
	return &Ticket{wait: func() error {
		defer j.inFlight.Add(-1)
		return j.finish(p)
	}}
}

// finish runs the group-commit protocol for one enqueued append:
// either be acknowledged by a concurrent leader or acquire the leader
// token and flush the whole queue with one write+fsync. Followers
// never need the token to observe their ack — crucial, because the
// next leader holds it while waiting for stragglers, and the previous
// batch's followers must not count as stragglers.
func (j *Journal) finish(p *pending) error {
	select {
	case err := <-p.done:
		// A concurrent leader committed this record.
		return err
	case j.leader <- struct{}{}:
	}
	// Leader. The previous leader may have committed this record
	// between the enqueue and the token acquisition; anyone left in
	// the queue is itself selecting on the token, so releasing it and
	// returning cannot strand them.
	select {
	case err := <-p.done:
		<-j.leader
		return err
	default:
	}
	j.waitForStragglers()
	j.qmu.Lock()
	batch := j.queue
	j.queue = nil
	j.qmu.Unlock()
	j.mu.Lock()
	err := j.commitBatchLocked(batch)
	j.mu.Unlock()
	for _, q := range batch {
		q.done <- err
	}
	<-j.leader
	return <-p.done
}

// waitForStragglers holds the batch open (up to the configured
// window) while appenders that have entered Append/AppendBatch have
// not yet queued their frames. With no concurrent appenders it
// returns immediately.
func (j *Journal) waitForStragglers() {
	w := j.batchWindow
	if w <= 0 {
		return
	}
	step := w / 16
	if step <= 0 {
		step = time.Microsecond
	}
	deadline := time.Now().Add(w)
	for {
		j.qmu.Lock()
		queued := len(j.queue)
		j.qmu.Unlock()
		if int32(queued) >= j.inFlight.Load() || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(step)
	}
}

// commitBatchLocked writes and fsyncs every queued frame as one unit.
// On failure the file is truncated back to the last acknowledged
// boundary, so the batch wholly acks or wholly rolls back. Assumes
// j.mu is held; the caller delivers the returned error to every
// batch member.
func (j *Journal) commitBatchLocked(batch []*pending) error {
	var records int64
	var buf []byte
	if len(batch) == 1 {
		records, buf = int64(batch[0].n), batch[0].frames
	} else {
		total := 0
		for _, p := range batch {
			records += int64(p.n)
			total += len(p.frames)
		}
		buf = make([]byte, 0, total)
		for _, p := range batch {
			buf = append(buf, p.frames...)
		}
	}
	if j.f == nil {
		j.stats.AppendErrors.Add(records)
		return ErrClosed
	}
	if j.failed != nil {
		j.stats.AppendErrors.Add(records)
		return fmt.Errorf("%w: %v", ErrFailed, j.failed)
	}
	if _, err := j.f.Write(buf); err != nil {
		j.stats.AppendErrors.Add(records)
		j.rollbackLocked()
		return fmt.Errorf("wal: %w", err)
	}
	if err := j.syncLocked(); err != nil {
		j.stats.AppendErrors.Add(records)
		j.rollbackLocked()
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.size += int64(len(buf))
	j.stats.Appends.Add(records)
	j.stats.BytesAppended.Add(int64(len(buf)))
	j.stats.Syncs.Add(1)
	j.stats.Batches.Add(1)
	if j.batchObs != nil {
		j.batchObs.Observe(time.Duration(records) * time.Microsecond)
	}
	return nil
}

// rollbackLocked truncates away the bytes of a failed append so the
// next record lands at a record boundary — a partial frame left
// mid-log would be taken for the torn tail on replay, discarding
// every acknowledged record after it. O_APPEND makes the next write
// resume at the truncated end. If the truncate itself fails the
// journal is marked failed and refuses further appends: better
// unavailable than silently lossy.
func (j *Journal) rollbackLocked() {
	if err := j.f.Truncate(j.size); err != nil {
		j.failed = fmt.Errorf("rollback truncate: %v", err)
	}
}

// Reset implements Appender: truncate to zero after a snapshot has
// captured everything the journal held. The caller must ensure no
// append is concurrently in flight (the catalog's Save gates
// mutations for exactly this reason): a queued-but-uncommitted record
// would land in the truncated log and replay over the newer snapshot.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.size = 0
	j.failed = nil // the log is demonstrably clean again
	j.stats.Resets.Add(1)
	return nil
}

// Sync implements Appender.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.syncLocked(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.stats.Syncs.Add(1)
	return nil
}

// Close implements Appender.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Stats implements Appender.
func (j *Journal) Stats() StatsSnapshot {
	return StatsSnapshot{
		Appends:       j.stats.Appends.Load(),
		BytesAppended: j.stats.BytesAppended.Load(),
		Syncs:         j.stats.Syncs.Load(),
		Resets:        j.stats.Resets.Load(),
		AppendErrors:  j.stats.AppendErrors.Load(),
		Batches:       j.stats.Batches.Load(),
	}
}

// ReplayResult reports what a Replay pass found.
type ReplayResult struct {
	// Records is the number of intact records handed to fn.
	Records int
	// Torn is true when the log ends in an incomplete or corrupt
	// record — the signature of a crash mid-append. Everything before
	// the tear was replayed.
	Torn bool
	// TornOffset is the byte offset of the tear when Torn.
	TornOffset int64
	// Consumed is the byte length of the intact records handed to fn —
	// the offset a resuming reader should continue from. It excludes
	// the torn tail and any record fn rejected.
	Consumed int64
}

// Replay reads the journal at path and calls fn for each intact
// record in order. A missing file is an empty journal. Replay stops
// at a torn tail (reported via ReplayResult, not an error); an error
// from fn aborts the replay and is returned.
func Replay(path string, fn func(data []byte) error) (ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayResult{}, nil
		}
		return ReplayResult{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return replayReader(f, fn)
}

// ReplayFrames decodes frames from r — exactly Replay, but over any
// reader, so a replication feed can resume a segment from a byte
// offset (position the reader, then add ReplayResult.Consumed).
func ReplayFrames(r io.Reader, fn func(data []byte) error) (ReplayResult, error) {
	return replayReader(r, fn)
}

// replayReader decodes frames from r until a clean EOF, a tear, or an
// fn error. Factored out of Replay so the frame decoder can be fuzzed
// without a file.
func replayReader(r io.Reader, fn func(data []byte) error) (ReplayResult, error) {
	var res ReplayResult
	var off int64
	hdr := make([]byte, frameHeaderLen)
	for {
		res.Consumed = off
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			res.Torn, res.TornOffset = true, off
			return res, nil // torn header
		}
		if binary.BigEndian.Uint32(hdr) != recordMagic {
			res.Torn, res.TornOffset = true, off
			return res, nil
		}
		n := binary.BigEndian.Uint32(hdr[4:])
		if n > MaxRecordLen {
			res.Torn, res.TornOffset = true, off
			return res, nil
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			res.Torn, res.TornOffset = true, off
			return res, nil // torn payload
		}
		if crc32.Checksum(data, castagnoli) != binary.BigEndian.Uint32(hdr[8:]) {
			res.Torn, res.TornOffset = true, off
			return res, nil // corrupt payload
		}
		if err := fn(data); err != nil {
			return res, err
		}
		res.Records++
		off += int64(frameHeaderLen) + int64(n)
		res.Consumed = off
	}
}

// TruncateAt cuts the journal at path down to off — the tear offset
// Replay reported — and fsyncs it, so appends after a torn-tail
// recovery resume at a clean record boundary. The bytes past the tear
// are unreadable by definition; left in place, a journal reopened with
// O_APPEND would write acknowledged records after them, and the next
// replay would stop at the old tear and drop every one. A missing file
// is a no-op.
func TruncateAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

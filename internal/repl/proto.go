// Package repl implements WAL-shipping replication for the catalog: a
// primary serves its journal as an HTTP feed, followers bootstrap from
// a streamed snapshot and tail the feed through the catalog's
// idempotent replay path, re-journaling the identical bytes locally so
// a promoted follower's log is byte-compatible with the primary's
// acked prefix.
//
// Feed endpoints (mounted by the primary):
//
//	GET /v1/repl/snapshot       fresh full snapshot (a TBMSNAP2
//	                            container); X-Repl-Seq names its seq
//	GET /v1/repl/wal?from_seq=N long-poll stream of RPF1 frames:
//	                            journal records with seq > N, heartbeats
//	                            carrying the primary's seq and byte
//	                            backlog, and a gone marker when
//	                            compaction outran the follower
//	                            (a too-old from_seq is 410 up front)
//	GET /v1/repl/blobs          JSON list of payload files
//	GET /v1/repl/blob/{id}      one payload's bytes
//
// Frame format ("RPF1"):
//
//	magic   [4]byte  "RPF1"
//	type    byte     'R' record / 'H' heartbeat / 'E' gone
//	seq     uint64   record seq; primary seq on 'H'; checkpoint seq on 'E'
//	backlog uint64   'H' only: durable WAL bytes not yet shipped
//	length  uint32   payload length ('R' only; 0 otherwise)
//	crc     uint32   CRC-32C over the payload
//	payload [length]byte
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"timedmedia/internal/wal"
)

// Frame types.
const (
	TypeRecord    byte = 'R' // one journal record payload
	TypeHeartbeat byte = 'H' // primary's current seq + byte backlog
	TypeGone      byte = 'E' // compaction outran the follower: re-bootstrap
)

var frameMagic = [4]byte{'R', 'P', 'F', '1'}

const frameHeaderLen = 4 + 1 + 8 + 8 + 4 + 4

// MaxFramePayload bounds a record payload; journal records are bounded
// the same way, so anything larger is corruption, not data.
const MaxFramePayload = wal.MaxRecordLen

// ErrBadFrame reports a feed frame that failed framing or checksum
// validation — the reader must drop the connection and resume.
var ErrBadFrame = errors.New("repl: bad feed frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one feed message.
type Frame struct {
	Type    byte
	Seq     uint64
	Backlog uint64
	Payload []byte
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [frameHeaderLen]byte
	copy(hdr[:4], frameMagic[:])
	hdr[4] = f.Type
	binary.BigEndian.PutUint64(hdr[5:], f.Seq)
	binary.BigEndian.PutUint64(hdr[13:], f.Backlog)
	binary.BigEndian.PutUint32(hdr[21:], uint32(len(f.Payload)))
	binary.BigEndian.PutUint32(hdr[25:], crc32.Checksum(f.Payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads and validates one frame from r. io.EOF at a frame
// boundary passes through unchanged (the stream ended); a tear inside
// a frame or a checksum mismatch is ErrBadFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: torn header: %v", ErrBadFrame, err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	f := Frame{
		Type:    hdr[4],
		Seq:     binary.BigEndian.Uint64(hdr[5:]),
		Backlog: binary.BigEndian.Uint64(hdr[13:]),
	}
	switch f.Type {
	case TypeRecord, TypeHeartbeat, TypeGone:
	default:
		return Frame{}, fmt.Errorf("%w: unknown type %q", ErrBadFrame, f.Type)
	}
	n := binary.BigEndian.Uint32(hdr[21:])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: torn payload: %v", ErrBadFrame, err)
		}
	}
	if crc32.Checksum(f.Payload, castagnoli) != binary.BigEndian.Uint32(hdr[25:]) {
		return Frame{}, fmt.Errorf("%w: payload checksum mismatch", ErrBadFrame)
	}
	return f, nil
}

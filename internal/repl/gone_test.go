package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"timedmedia/internal/telemetry"
)

// TestShipDetectsCompaction drives the feed cursor logic directly:
// after Save compacts the sealed segments, a cursor still parked on
// one of them must report gone when the follower's resume point fell
// below the checkpoint, and must skip ahead silently when the
// follower already has everything the missing segments held.
func TestShipDetectsCompaction(t *testing.T) {
	tp := newTestPrimary(t)
	clip := tp.ingest(t, "clip", 10, 21)
	for i := 0; i < 3; i++ {
		tp.cut(t, clip, []string{"a", "b", "c"}[i], int64(i), int64(i+5))
	}
	if err := tp.db.Save(tp.dir); err != nil {
		t.Fatal(err)
	}
	m := tp.db.Manifest()
	if m == nil || m.OldestSegment <= 1 {
		t.Fatalf("Save did not compact: manifest %+v", m)
	}
	durSeg, durOff, ok := tp.db.WALDurableBoundary()
	if !ok {
		t.Fatal("no durable boundary")
	}

	// A follower that resumed below the checkpoint and whose segment
	// was compacted away: nothing on disk can fill the gap.
	var buf bytes.Buffer
	cur := cursor{seg: 1}
	lastSent := uint64(0)
	if _, gone := tp.p.ship(&buf, &cur, &lastSent, durSeg, durOff); !gone {
		t.Error("compacted segment below checkpoint: want gone")
	}

	// A follower already at the checkpoint seq lost nothing to the
	// compaction: the cursor skips the missing files and lands on the
	// live segment.
	cur = cursor{seg: 1}
	lastSent = m.CheckpointSeq
	if _, gone := tp.p.ship(&buf, &cur, &lastSent, durSeg, durOff); gone {
		t.Error("caught-up cursor reported gone across compacted segments")
	}
	if cur.seg != durSeg {
		t.Errorf("cursor stopped at segment %d, want %d", cur.seg, durSeg)
	}
}

// TestReplGoneFrameRebootstrap covers the live-tail half of the
// compaction protocol: a TypeGone frame arriving mid-stream (rather
// than a 410 up front) must trigger the same automatic re-bootstrap.
// The frame is injected by a wrapper primary so the timing is exact.
func TestReplGoneFrameRebootstrap(t *testing.T) {
	tp := newTestPrimary(t)
	clip := tp.ingest(t, "clip", 10, 22)
	tp.cut(t, clip, "cut1", 2, 8)

	var walCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/snapshot", tp.p.HandleSnapshot)
	mux.HandleFunc("GET /v1/repl/blobs", tp.p.HandleBlobs)
	mux.HandleFunc("GET /v1/repl/blob/{id}", tp.p.HandleBlob)
	mux.HandleFunc("GET /v1/repl/wal", func(w http.ResponseWriter, r *http.Request) {
		if walCalls.Add(1) == 1 {
			WriteFrame(w, Frame{Type: TypeGone, Seq: tp.db.Seq()})
			return
		}
		tp.p.HandleWAL(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reg := telemetry.NewRegistry()
	f, err := Start(srv.URL, t.TempDir(), Options{
		Registry:      reg,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFor(t, "re-bootstrap after gone frame", func() bool {
		ok, _ := f.Ready()
		return ok && f.Status().Bootstraps >= 2
	})
	if got := reg.Counter(telemetry.ReplBootstrapsFamily, "").Load(); got < 2 {
		t.Errorf("bootstraps counter = %d, want >= 2", got)
	}
	if _, err := f.DB().Lookup("cut1"); err != nil {
		t.Errorf("replica after gone-frame recovery: %v", err)
	}
	if err := f.DB().VerifyIndexes(); err != nil {
		t.Errorf("replica index divergence: %v", err)
	}
}

func TestBootstrapServerErrors(t *testing.T) {
	// Blob list endpoint returns garbage.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer bad.Close()
	f := newBareFollower(t, bad.URL, t.TempDir())
	if err := f.fetchBlobs(context.Background()); err == nil {
		t.Error("garbage blob list accepted")
	}

	// Blob list fine, snapshot endpoint failing.
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/blobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]blobInfo{})
	})
	mux.HandleFunc("/v1/repl/snapshot", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "disk full", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	f2 := newBareFollower(t, srv.URL, t.TempDir())
	if err := f2.bootstrap(context.Background()); err == nil {
		t.Error("failed snapshot fetch accepted")
	}
}

func TestStatusOnEmptyFollower(t *testing.T) {
	f := &Follower{}
	if st := f.Status(); st.Seq != 0 || st.Ready {
		t.Errorf("zero follower status = %+v", st)
	}
}

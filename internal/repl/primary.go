package repl

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/telemetry"
	"timedmedia/internal/wal"
)

// Feed pacing defaults. The poll interval bounds how stale a follower
// can be behind an idle connection; the heartbeat keeps lag metrics
// fresh and lets followers detect a half-dead link.
const (
	DefaultPollInterval      = 25 * time.Millisecond
	DefaultHeartbeatInterval = 500 * time.Millisecond
)

// Primary serves a catalog's replication feed. The catalog must have
// a segmented journal attached for dir (the normal tbmserve setup);
// the feed reads sealed segment files whole and the active segment
// only up to its durable boundary, so it never ships bytes a crash
// could roll back.
type Primary struct {
	db    *catalog.DB
	store blob.Store
	dir   string

	poll      time.Duration
	heartbeat time.Duration

	shipped *telemetry.Counter
}

// NewPrimary builds the feed server for db, whose journal and payload
// files live in dir. reg may be nil (metrics are then dropped).
func NewPrimary(db *catalog.DB, store blob.Store, dir string, reg *telemetry.Registry) *Primary {
	return &Primary{
		db:        db,
		store:     store,
		dir:       dir,
		poll:      DefaultPollInterval,
		heartbeat: DefaultHeartbeatInterval,
		shipped:   reg.Counter(telemetry.ReplShippedFamily, ""),
	}
}

// SetIntervals overrides the feed's poll and heartbeat pacing (tests
// tighten them). Non-positive values keep the current setting.
func (p *Primary) SetIntervals(poll, heartbeat time.Duration) {
	if poll > 0 {
		p.poll = poll
	}
	if heartbeat > 0 {
		p.heartbeat = heartbeat
	}
}

// Register installs the feed endpoints through add, so the one list of
// route patterns serves tbmserve, tests, and a dedicated feed listener
// alike.
func (p *Primary) Register(add func(pattern, name string, h http.HandlerFunc)) {
	add("GET /v1/repl/snapshot", "repl_snapshot", p.HandleSnapshot)
	add("GET /v1/repl/wal", "repl_wal", p.HandleWAL)
	add("GET /v1/repl/blobs", "repl_blobs", p.HandleBlobs)
	add("GET /v1/repl/blob/{id}", "repl_blob", p.HandleBlob)
}

// HandleSnapshot streams a fresh full snapshot. Save pins the catalog
// at a rotation boundary and records the covered seq in the manifest,
// so the snapshot plus the feed from X-Repl-Seq is gapless — a stale
// on-disk snapshot would instead leave the follower forever behind a
// feed that 410s it.
func (p *Primary) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := p.db.Save(p.dir); err != nil {
		http.Error(w, fmt.Sprintf("snapshot: %v", err), http.StatusInternalServerError)
		return
	}
	seq := p.db.Seq()
	if m := p.db.Manifest(); m != nil {
		seq = m.CheckpointSeq
	}
	f, err := os.Open(catalog.SnapshotFile(p.dir))
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot: %v", err), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	w.Header().Set("X-Repl-Seq", strconv.FormatUint(seq, 10))
	io.Copy(w, f)
}

// cursor is a feed connection's position in the segment files.
type cursor struct {
	seg uint64
	off int64
}

// HandleWAL streams journal records with seq > from_seq, then follows
// the live log. The response is an unbounded RPF1 frame stream; it
// ends when the client goes away or compaction outruns the cursor
// (TypeGone). A from_seq already below the checkpoint floor is 410 —
// the records are only available via a fresh bootstrap.
func (p *Primary) HandleWAL(w http.ResponseWriter, r *http.Request) {
	fromSeq, err := strconv.ParseUint(r.URL.Query().Get("from_seq"), 10, 64)
	if err != nil {
		http.Error(w, "want ?from_seq=N", http.StatusBadRequest)
		return
	}
	if m := p.db.Manifest(); m != nil && fromSeq < m.CheckpointSeq {
		http.Error(w, fmt.Sprintf("from_seq %d compacted away (checkpoint at %d); re-bootstrap",
			fromSeq, m.CheckpointSeq), http.StatusGone)
		return
	}
	cur, ok := p.startCursor()
	if !ok {
		http.Error(w, "catalog has no segmented journal attached", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)

	lastSent := fromSeq
	lastBeat := time.Time{} // zero: first loop iteration heartbeats immediately
	ctx := r.Context()
	for ctx.Err() == nil {
		durSeg, durOff, ok := p.db.WALDurableBoundary()
		if !ok {
			return
		}
		wrote, gone := p.ship(w, &cur, &lastSent, durSeg, durOff)
		if gone {
			WriteFrame(w, Frame{Type: TypeGone, Seq: p.checkpointSeq()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if time.Since(lastBeat) >= p.heartbeat {
			if err := WriteFrame(w, Frame{
				Type:    TypeHeartbeat,
				Seq:     p.db.Seq(),
				Backlog: p.backlog(cur, durSeg, durOff),
			}); err != nil {
				return
			}
			lastBeat = time.Now()
			wrote = true
		}
		if wrote && flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(p.poll):
		}
	}
}

// startCursor positions a new feed connection at the oldest segment
// that can still hold unshipped records.
func (p *Primary) startCursor() (cursor, bool) {
	if _, _, ok := p.db.WALDurableBoundary(); !ok {
		return cursor{}, false
	}
	start := uint64(1)
	if m := p.db.Manifest(); m != nil && m.OldestSegment > 0 {
		start = m.OldestSegment
	}
	if idxs, err := wal.ListSegments(p.dir); err == nil && len(idxs) > 0 && idxs[0] > start {
		start = idxs[0]
	}
	return cursor{seg: start}, true
}

// checkpointSeq is the manifest's coverage floor (0 before the first
// checkpoint).
func (p *Primary) checkpointSeq() uint64 {
	if m := p.db.Manifest(); m != nil {
		return m.CheckpointSeq
	}
	return 0
}

// ship writes every durable record past the cursor with seq > lastSent
// and advances both. gone reports that a segment the cursor still
// needed was compacted away — the follower must re-bootstrap.
func (p *Primary) ship(w io.Writer, cur *cursor, lastSent *uint64, durSeg uint64, durOff int64) (wrote, gone bool) {
	for cur.seg <= durSeg {
		limit := int64(-1) // sealed: read to EOF
		if cur.seg == durSeg {
			limit = durOff
		}
		consumed, err := readRecords(wal.SegmentFile(p.dir, cur.seg), cur.off, limit, func(rec []byte) error {
			seq, _, _, infoErr := catalog.RecordInfo(rec)
			if infoErr != nil {
				// Undecodable record: skip it rather than wedge the feed —
				// the follower's own replay would skip it identically.
				return nil
			}
			if seq <= *lastSent {
				return nil
			}
			if werr := WriteFrame(w, Frame{Type: TypeRecord, Seq: seq, Payload: rec}); werr != nil {
				return werr
			}
			*lastSent = seq
			p.shipped.Inc()
			wrote = true
			return nil
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Compacted under us. Records at or below the checkpoint
				// floor are covered by snapshots the follower already has
				// (or must re-fetch); anything above it still lives in a
				// later segment.
				if *lastSent < p.checkpointSeq() {
					return wrote, true
				}
				cur.seg++
				cur.off = 0
				continue
			}
			return wrote, false // write error or transient read error: caller's poll retries
		}
		cur.off += consumed
		if cur.seg == durSeg {
			return wrote, false // caught up to the durable boundary
		}
		// Sealed segment fully read (a tear in one truncates it for the
		// feed exactly as it does for local replay); move on.
		cur.seg++
		cur.off = 0
	}
	return wrote, false
}

// readRecords decodes WAL frames from path starting at off, stopping
// at limit (absolute file offset; -1 reads to EOF), and returns the
// bytes consumed by intact records. A tear stops the scan cleanly.
func readRecords(path string, off, limit int64, fn func([]byte) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var src io.Reader
	if limit >= 0 {
		if limit <= off {
			return 0, nil
		}
		src = io.NewSectionReader(f, off, limit-off)
	} else {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return 0, err
		}
		src = f
	}
	res, err := wal.ReplayFrames(src, fn)
	if err != nil {
		return res.Consumed, err
	}
	return res.Consumed, nil
}

// backlog estimates the durable WAL bytes the cursor has not shipped
// yet — the byte form of replication lag, carried on heartbeats.
func (p *Primary) backlog(cur cursor, durSeg uint64, durOff int64) uint64 {
	var total int64
	for seg := cur.seg; seg <= durSeg; seg++ {
		var size int64
		if seg == durSeg {
			size = durOff
		} else if fi, err := os.Stat(wal.SegmentFile(p.dir, seg)); err == nil {
			size = fi.Size()
		}
		if seg == cur.seg {
			size -= cur.off
		}
		if size > 0 {
			total += size
		}
	}
	return uint64(total)
}

// blobInfo is one entry of GET /v1/repl/blobs.
type blobInfo struct {
	ID   uint64 `json:"id"`
	Size int64  `json:"size"`
}

// HandleBlobs lists the primary's payload files so a bootstrapping
// follower knows what to fetch.
func (p *Primary) HandleBlobs(w http.ResponseWriter, r *http.Request) {
	ids, err := p.store.IDs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]blobInfo, 0, len(ids))
	for _, id := range ids {
		b, err := p.store.Open(id)
		if err != nil {
			continue // quarantined or raced a delete; the follower skips it too
		}
		out = append(out, blobInfo{ID: uint64(id), Size: b.Size()})
	}
	writeJSON(w, out)
}

// HandleBlob streams one payload's bytes. Reads go through the store,
// so a corrupt payload is quarantined here rather than replicated.
func (p *Primary) HandleBlob(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || n == 0 {
		http.Error(w, "bad blob id", http.StatusBadRequest)
		return
	}
	b, err := p.store.Open(blob.ID(n))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, blob.ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	size := b.Size()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	const chunk = 1 << 20
	for off := int64(0); off < size; {
		n := int64(chunk)
		if off+n > size {
			n = size - off
		}
		data, err := b.ReadSpan(off, n)
		if err != nil {
			return // headers sent; the short body fails the follower's size check
		}
		if _, err := w.Write(data); err != nil {
			return
		}
		off += n
	}
}

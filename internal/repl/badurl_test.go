package repl

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

// A primary URL that fails request construction must surface as an
// error from every fetch path, not a panic or a silent retry loop.
func TestUnbuildableRequests(t *testing.T) {
	f := newBareFollower(t, "http://bad url", t.TempDir())
	ctx := context.Background()
	if err := f.tailOnce(ctx); err == nil {
		t.Error("tailOnce built a request from an invalid URL")
	}
	if err := f.fetchBlobs(ctx); err == nil {
		t.Error("fetchBlobs built a request from an invalid URL")
	}
	if err := f.ensureBlob(ctx, 5); err == nil {
		t.Error("ensureBlob built a request from an invalid URL")
	}
	if err := f.bootstrap(ctx); err == nil {
		t.Error("bootstrap built a request from an invalid URL")
	}
}

func TestInstallBlobCreateFailure(t *testing.T) {
	f := &Follower{dir: "/nonexistent/replica/dir", client: &http.Client{}}
	if err := f.installBlob(1, strings.NewReader("x"), 1); err == nil {
		t.Error("install into a missing directory succeeded")
	}
}

package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/telemetry"
)

// Reconnect backoff defaults: exponential with full jitter, so a
// restarted primary is not greeted by a synchronized thundering herd
// of followers.
const (
	DefaultReconnectBase = 100 * time.Millisecond
	DefaultReconnectMax  = 5 * time.Second
)

// errGone reports a feed that can no longer serve the follower's
// resume point (HTTP 410 or a TypeGone frame): compaction on the
// primary outran us and only a fresh bootstrap recovers.
var errGone = errors.New("repl: resume point compacted away; re-bootstrap required")

// Options configures a Follower. The zero value works.
type Options struct {
	// Client issues every feed request (nil: a default client). Tests
	// wrap its transport in a fault injector.
	Client *http.Client
	// CatalogOptions configure each catalog the follower opens
	// (bootstrap and re-bootstrap alike).
	CatalogOptions []catalog.Option
	// Registry receives the replication gauges and counters (nil drops
	// them).
	Registry *telemetry.Registry
	// ReconnectBase/ReconnectMax bound the feed reconnect backoff.
	ReconnectBase, ReconnectMax time.Duration
	// OnSwap is called (from the tail goroutine) whenever a
	// re-bootstrap replaces the follower's catalog, so a serving layer
	// can swap its handler. The initial catalog is not announced — the
	// caller has it from DB().
	OnSwap func(*catalog.DB)
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Status is a follower's externally visible replication state.
type Status struct {
	Role       string `json:"role"` // "follower", then "primary" after Promote
	Primary    string `json:"primary,omitempty"`
	Seq        uint64 `json:"seq"`
	PrimarySeq uint64 `json:"primary_seq"`
	LagSeqs    uint64 `json:"lag_seqs"`
	LagBytes   uint64 `json:"lag_bytes"`
	Ready      bool   `json:"ready"`
	Bootstraps int64  `json:"bootstraps"`
	Reconnects int64  `json:"reconnects"`
	LastError  string `json:"last_error,omitempty"`
}

// Follower replicates a primary's catalog into dir and keeps it
// caught up. It owns the blob store and catalog it opens; reads may be
// served from DB() at any time, writes are the caller's to reject
// until Promote.
type Follower struct {
	primary string
	dir     string
	client  *http.Client
	opts    Options

	lagSeqs    *telemetry.Gauge
	lagBytes   *telemetry.Gauge
	applied    *telemetry.Counter
	reconnects *telemetry.Counter
	bootstraps *telemetry.Counter

	mu         sync.Mutex
	db         *catalog.DB
	store      *blob.FileStore
	ready      bool
	promoted   bool
	primarySeq uint64
	nBootstrap int64
	nReconnect int64
	lastErr    error
	lagB       uint64

	cancel context.CancelFunc
	done   chan struct{}
}

// Start opens (or bootstraps) the replica in dir and begins tailing
// the primary's feed. When dir already holds a catalog the follower
// resumes from its seq — the primary may be unreachable at that point;
// a fresh dir needs one successful bootstrap before Start returns.
func Start(primaryURL, dir string, opts Options) (*Follower, error) {
	if opts.ReconnectBase <= 0 {
		opts.ReconnectBase = DefaultReconnectBase
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = DefaultReconnectMax
	}
	f := &Follower{
		primary:    strings.TrimRight(primaryURL, "/"),
		dir:        dir,
		client:     opts.Client,
		opts:       opts,
		lagSeqs:    opts.Registry.Gauge(telemetry.ReplLagSeqsFamily, ""),
		lagBytes:   opts.Registry.Gauge(telemetry.ReplLagBytesFamily, ""),
		applied:    opts.Registry.Counter(telemetry.ReplAppliedFamily, ""),
		reconnects: opts.Registry.Counter(telemetry.ReplReconnectsFamily, ""),
		bootstraps: opts.Registry.Counter(telemetry.ReplBootstrapsFamily, ""),
		done:       make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		return nil, err
	}
	f.store = store

	if _, statErr := os.Stat(catalog.SnapshotFile(dir)); statErr == nil {
		db, err := catalog.Open(dir, store, opts.CatalogOptions...)
		if err != nil {
			return nil, fmt.Errorf("repl: reopen replica: %w", err)
		}
		f.db = db
		f.logf("repl: resuming replica at seq %d", db.Seq())
	} else {
		if err := f.bootstrap(context.Background()); err != nil {
			store.Close()
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go f.run(ctx)
	return f, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// DB returns the follower's current catalog. A re-bootstrap replaces
// it; long-lived holders should re-fetch (or use OnSwap).
func (f *Follower) DB() *catalog.DB {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// Ready reports whether the replica is serving-current: bootstrapped
// and caught up to the primary at least once. The reason names the
// gap while not ready.
func (f *Follower) Ready() (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return true, ""
	}
	if f.ready {
		return true, ""
	}
	return false, fmt.Sprintf("replica catching up: applied seq %d, primary at %d",
		f.seqLocked(), f.primarySeq)
}

// seqLocked is the current catalog's seq; assumes f.mu held.
func (f *Follower) seqLocked() uint64 {
	if f.db == nil {
		return 0
	}
	return f.db.Seq()
}

// Status snapshots the replication state for /healthz.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Role:       "follower",
		Primary:    f.primary,
		Seq:        f.seqLocked(),
		PrimarySeq: f.primarySeq,
		LagBytes:   f.lagB,
		Ready:      f.ready || f.promoted,
		Bootstraps: f.nBootstrap,
		Reconnects: f.nReconnect,
	}
	if f.promoted {
		st.Role = "primary"
		st.Primary = ""
		st.LagBytes = 0
		st.PrimarySeq = st.Seq // the old primary's position is no longer meaningful
	} else if st.PrimarySeq > st.Seq {
		st.LagSeqs = st.PrimarySeq - st.Seq
	}
	if f.lastErr != nil && !f.promoted {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// PrimaryURL returns the primary this follower replicates from ("" once
// promoted).
func (f *Follower) PrimaryURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return ""
	}
	return f.primary
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// run is the tail loop: stream the feed, reconnect with backoff,
// re-bootstrap when the primary compacted past us.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := f.opts.ReconnectBase
	for ctx.Err() == nil {
		err := f.tailOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errGone) {
			f.logf("repl: %v", err)
			if berr := f.rebootstrap(ctx); berr != nil {
				f.setErr(berr)
				f.logf("repl: re-bootstrap failed: %v", berr)
			} else {
				backoff = f.opts.ReconnectBase
				continue
			}
		} else if err != nil {
			f.setErr(err)
			f.logf("repl: feed dropped: %v", err)
		}
		f.reconnects.Inc()
		f.mu.Lock()
		f.nReconnect++
		f.mu.Unlock()
		// Full jitter: sleep a uniform fraction of the backoff, then
		// double it toward the cap.
		sleep := time.Duration(rand.Int63n(int64(backoff) + 1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// tailOnce runs one feed connection until it drops. A nil error means
// the stream ended cleanly (EOF); the caller reconnects either way.
func (f *Follower) tailOnce(ctx context.Context) error {
	db := f.DB()
	url := fmt.Sprintf("%s/v1/repl/wal?from_seq=%d", f.primary, db.Seq())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errGone
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("repl: feed: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	for {
		frame, err := ReadFrame(resp.Body)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch frame.Type {
		case TypeRecord:
			if err := f.applyRecord(ctx, frame.Payload); err != nil {
				return err
			}
		case TypeHeartbeat:
			f.observeHeartbeat(frame.Seq, frame.Backlog)
		case TypeGone:
			return errGone
		}
	}
}

// applyRecord applies one shipped journal record: fetch its payload
// blob first if the record needs one, then run it through the
// catalog's replicated-apply path.
func (f *Follower) applyRecord(ctx context.Context, rec []byte) error {
	_, _, blobID, err := catalog.RecordInfo(rec)
	if err != nil {
		return fmt.Errorf("repl: undecodable feed record: %w", err)
	}
	if blobID != 0 {
		if err := f.ensureBlob(ctx, blobID); err != nil {
			return err
		}
	}
	db := f.DB()
	seq, err := db.ApplyReplicated(rec)
	if err != nil {
		// Memory may now be ahead of the local journal (the apply
		// landed, the re-journal failed): treat it like a crash and
		// reload from disk before continuing.
		f.logf("repl: apply failed, reloading replica: %v", err)
		if rerr := f.reloadLocal(); rerr != nil {
			return errors.Join(err, rerr)
		}
		return err
	}
	f.applied.Inc()
	f.mu.Lock()
	if f.primarySeq > seq {
		f.lagSeqs.Set(int64(f.primarySeq - seq))
	} else {
		f.lagSeqs.Set(0)
	}
	f.mu.Unlock()
	return nil
}

// observeHeartbeat folds a heartbeat's view of the primary into the
// lag metrics and readiness.
func (f *Follower) observeHeartbeat(primarySeq, backlog uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primarySeq = primarySeq
	f.lagB = backlog
	seq := f.seqLocked()
	var lag uint64
	if primarySeq > seq {
		lag = primarySeq - seq
	}
	f.lagSeqs.Set(int64(lag))
	f.lagBytes.Set(int64(backlog))
	if lag == 0 && backlog == 0 && !f.ready {
		f.ready = true
		f.lastErr = nil
	}
}

// ensureBlob makes the payload file for id present locally, fetching
// it from the primary when missing. The payload is sealed with a CRC
// sidecar exactly as a local Sync would, so the store's open-time
// verification covers replicated payloads too.
func (f *Follower) ensureBlob(ctx context.Context, id blob.ID) error {
	path := filepath.Join(f.dir, blob.FileName(id))
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	url := fmt.Sprintf("%s/v1/repl/blob/%d", f.primary, uint64(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: fetch %v: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: fetch %v: %s", id, resp.Status)
	}
	return f.installBlob(id, resp.Body, resp.ContentLength)
}

// installBlob streams a fetched payload into place: tmp file, CRC
// computed on the way through, size check against the declared length,
// fsync, sidecar, rename.
func (f *Follower) installBlob(id blob.ID, r io.Reader, want int64) error {
	path := filepath.Join(f.dir, blob.FileName(id))
	tmp := path + ".fetch"
	out, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repl: install %v: %w", id, err)
	}
	crc, n, err := blob.ChecksumReader(io.TeeReader(r, out), -1)
	if err == nil && want >= 0 && n != want {
		err = fmt.Errorf("got %d of %d bytes", n, want)
	}
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: install %v: %w", id, err)
	}
	if err := blob.WriteSidecar(tmp, crc, n); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(blob.SidecarFile(tmp), blob.SidecarFile(path)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: install %v: %w", id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		os.Remove(blob.SidecarFile(path))
		return fmt.Errorf("repl: install %v: %w", id, err)
	}
	f.mu.Lock()
	store := f.store
	f.mu.Unlock()
	store.Reserve(id)
	return nil
}

// reloadLocal rebuilds the catalog from the replica directory after a
// local apply/journal failure, discarding any in-memory state that
// outran the disk.
func (f *Follower) reloadLocal() error {
	f.mu.Lock()
	old := f.db
	store := f.store
	f.mu.Unlock()
	if old != nil {
		old.CloseJournal()
	}
	db, err := catalog.Open(f.dir, store, f.opts.CatalogOptions...)
	if err != nil {
		return fmt.Errorf("repl: reload replica: %w", err)
	}
	f.swapDB(db)
	return nil
}

// bootstrap builds the replica from scratch: fetch payload files, then
// a pinned snapshot, then open the catalog over them.
func (f *Follower) bootstrap(ctx context.Context) error {
	if err := f.fetchBlobs(ctx); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: bootstrap: %s", resp.Status)
	}
	snap := catalog.SnapshotFile(f.dir)
	tmp := snap + ".fetch"
	out, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	_, err = io.Copy(out, resp.Body)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	if err := os.Rename(tmp, snap); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	// The snapshot container's own checksums gate the load; corruption
	// in transit surfaces here, not as a silently wrong replica.
	db, err := catalog.Open(f.dir, f.store, f.opts.CatalogOptions...)
	if err != nil {
		return fmt.Errorf("repl: bootstrap load: %w", err)
	}
	f.bootstraps.Inc()
	f.mu.Lock()
	f.nBootstrap++
	f.mu.Unlock()
	f.swapDB(db)
	f.logf("repl: bootstrapped from %s at seq %d", f.primary, db.Seq())
	return nil
}

// swapDB publishes db as the follower's catalog and tells the serving
// layer.
func (f *Follower) swapDB(db *catalog.DB) {
	f.mu.Lock()
	f.db = db
	f.mu.Unlock()
	if f.opts.OnSwap != nil {
		f.opts.OnSwap(db)
	}
}

// fetchBlobs fetches every payload file the primary has that the
// replica is missing.
func (f *Follower) fetchBlobs(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/repl/blobs", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: list blobs: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: list blobs: %s", resp.Status)
	}
	var list []blobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return fmt.Errorf("repl: list blobs: %w", err)
	}
	for _, info := range list {
		if err := f.ensureBlob(ctx, blob.ID(info.ID)); err != nil {
			return err
		}
	}
	return nil
}

// rebootstrap discards the replica's catalog state (payload files are
// kept — they are content-addressed by ID and never rewritten) and
// bootstraps afresh. Reads keep being served from the old catalog
// until the new one swaps in.
func (f *Follower) rebootstrap(ctx context.Context) error {
	f.mu.Lock()
	old := f.db
	f.ready = false
	f.mu.Unlock()
	if old != nil {
		old.CloseJournal()
	}
	if err := wipeCatalogState(f.dir); err != nil {
		return err
	}
	return f.bootstrap(ctx)
}

// wipeCatalogState removes snapshot, manifest, checkpoint and journal
// files from dir, leaving payload files in place.
func wipeCatalogState(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("repl: wipe: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := name == "MANIFEST" || name == "journal.log" ||
			strings.HasPrefix(name, "catalog.gob") ||
			strings.HasPrefix(name, "checkpoint.") ||
			strings.HasPrefix(name, "journal.") && strings.HasSuffix(name, ".log")
		if !stale {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("repl: wipe: %w", err)
		}
	}
	return nil
}

// Promote turns the replica into a primary: stop tailing, verify the
// secondary indexes against the object graph, and write a full
// snapshot so the promoted state is durable on its own terms. The
// caller flips its write gate after Promote returns nil; the catalog's
// journal is already attached, so writes work immediately.
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	f.stopTail()
	db := f.DB()
	if err := db.VerifyIndexes(); err != nil {
		return fmt.Errorf("repl: promote: index verification failed: %w", err)
	}
	if err := db.Save(f.dir); err != nil {
		return fmt.Errorf("repl: promote: %w", err)
	}
	f.mu.Lock()
	f.promoted = true
	f.ready = true
	f.lastErr = nil
	f.mu.Unlock()
	f.lagSeqs.Set(0)
	f.lagBytes.Set(0)
	f.logf("repl: promoted at seq %d", db.Seq())
	return nil
}

// stopTail cancels the tail loop and waits for it to exit. Idempotent.
func (f *Follower) stopTail() {
	f.cancel()
	<-f.done
}

// Close stops the tail loop and releases the catalog journal and blob
// store. The replica directory remains loadable.
func (f *Follower) Close() error {
	f.stopTail()
	db := f.DB()
	var first error
	if db != nil {
		if err := db.SyncJournal(); err != nil && first == nil {
			first = err
		}
		if err := db.CloseJournal(); err != nil && first == nil {
			first = err
		}
	}
	f.mu.Lock()
	store := f.store
	f.mu.Unlock()
	if err := store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// writeJSON is the package's minimal JSON responder.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

package repl

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
	"timedmedia/internal/faultfs"
	"timedmedia/internal/frame"
	"timedmedia/internal/telemetry"
	"timedmedia/internal/timebase"
)

func genVideo(n int, seed int64) *derive.Value {
	g := frame.Generator{W: 32, H: 24, Seed: seed}
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = g.Frame(i)
	}
	return derive.VideoValue(frames, timebase.PAL)
}

// testPrimary is a catalog + feed server wired the way tbmserve wires
// them, on an httptest listener.
type testPrimary struct {
	dir   string
	db    *catalog.DB
	store *blob.FileStore
	p     *Primary
	srv   *httptest.Server
}

func newTestPrimary(t *testing.T, opts ...catalog.Option) *testPrimary {
	t.Helper()
	dir := t.TempDir()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := catalog.Open(dir, store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(db, store, dir, telemetry.NewRegistry())
	p.SetIntervals(2*time.Millisecond, 15*time.Millisecond)
	mux := http.NewServeMux()
	p.Register(func(pattern, name string, h http.HandlerFunc) { mux.HandleFunc(pattern, h) })
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		db.CloseJournal()
		store.Close()
	})
	return &testPrimary{dir: dir, db: db, store: store, p: p, srv: srv}
}

func (tp *testPrimary) ingest(t *testing.T, name string, frames int, seed int64) core.ID {
	t.Helper()
	id, err := tp.db.Ingest(name, genVideo(frames, seed), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (tp *testPrimary) cut(t *testing.T, parent core.ID, name string, from, to int64) core.ID {
	t.Helper()
	id, err := tp.db.SelectDuration(parent, name, from, to)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports the follower applied everything the primary acked.
func caughtUp(f *Follower, db *catalog.DB) func() bool {
	return func() bool { return f.DB().Seq() == db.Seq() }
}

func TestReplBootstrapTailCatchup(t *testing.T) {
	tp := newTestPrimary(t)
	clip := tp.ingest(t, "clip", 10, 1)
	tp.cut(t, clip, "cut1", 2, 8)

	reg := telemetry.NewRegistry()
	f, err := Start(tp.srv.URL, t.TempDir(), Options{
		Registry:      reg,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFor(t, "follower ready", func() bool { ok, _ := f.Ready(); return ok })
	if got, want := f.DB().Len(), tp.db.Len(); got != want {
		t.Fatalf("follower has %d objects, primary %d", got, want)
	}
	for _, name := range []string{"clip", "cut1"} {
		if _, err := f.DB().Lookup(name); err != nil {
			t.Errorf("follower Lookup(%q): %v", name, err)
		}
	}

	// Live tail: a new clip means a new payload blob the follower must
	// fetch mid-stream, plus a derivation on top of it.
	clip2 := tp.ingest(t, "clip2", 6, 2)
	tp.cut(t, clip2, "cut2", 1, 5)
	waitFor(t, "tail catch-up", caughtUp(f, tp.db))

	obj, err := f.DB().Lookup("cut2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.DB().Expand(obj.ID)
	if err != nil {
		t.Fatalf("Expand replicated cut: %v", err)
	}
	if len(v.Video) != 4 {
		t.Errorf("replicated cut has %d frames, want 4", len(v.Video))
	}
	if err := f.DB().VerifyIndexes(); err != nil {
		t.Errorf("replica index divergence: %v", err)
	}

	// Lag metrics drain to zero once the heartbeat confirms the gap is
	// closed.
	lagSeqs := reg.Gauge(telemetry.ReplLagSeqsFamily, "")
	lagBytes := reg.Gauge(telemetry.ReplLagBytesFamily, "")
	waitFor(t, "lag gauges at zero", func() bool {
		return lagSeqs.Load() == 0 && lagBytes.Load() == 0
	})
	st := f.Status()
	if st.Role != "follower" || !st.Ready || st.LagSeqs != 0 || st.Seq != tp.db.Seq() {
		t.Errorf("status = %+v", st)
	}
	if reg.Counter(telemetry.ReplAppliedFamily, "").Load() == 0 {
		t.Error("applied counter never moved")
	}
}

// TestReplFollowerRestartResume stops a follower, lets the primary
// advance across several small WAL segments, and restarts the follower
// on the same directory: it must resume from its local seq — no
// re-bootstrap — including when the resume point sits exactly at a
// segment boundary.
func TestReplFollowerRestartResume(t *testing.T) {
	tp := newTestPrimary(t, catalog.WithWALSegmentRecords(2))
	clip := tp.ingest(t, "clip", 12, 3)
	for i := 0; i < 4; i++ {
		tp.cut(t, clip, fmt.Sprintf("early%d", i), int64(i), int64(i+4))
	}

	dir := t.TempDir()
	opts := Options{ReconnectBase: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond}
	f, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first catch-up", caughtUp(f, tp.db))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Primary keeps going while the follower is down; with 2 records
	// per segment these writes span multiple new segment files.
	for i := 0; i < 5; i++ {
		tp.cut(t, clip, fmt.Sprintf("late%d", i), int64(i), int64(i+6))
	}

	f2, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "resume catch-up", caughtUp(f2, tp.db))

	if st := f2.Status(); st.Bootstraps != 0 {
		t.Errorf("restart re-bootstrapped (%d times); want plain resume", st.Bootstraps)
	}
	if got, want := f2.DB().Len(), tp.db.Len(); got != want {
		t.Errorf("follower has %d objects, primary %d", got, want)
	}
	if _, err := f2.DB().Lookup("late4"); err != nil {
		t.Errorf("missed write from downtime: %v", err)
	}
	if err := f2.DB().VerifyIndexes(); err != nil {
		t.Errorf("replica index divergence: %v", err)
	}
}

// TestReplCompactedRebootstrap takes a follower down, advances and
// compacts the primary past the follower's resume point, and restarts
// the follower: the feed answers 410 and the follower must rebuild
// itself from a fresh snapshot automatically.
func TestReplCompactedRebootstrap(t *testing.T) {
	tp := newTestPrimary(t, catalog.WithWALSegmentRecords(2))
	clip := tp.ingest(t, "clip", 12, 4)
	tp.cut(t, clip, "cut0", 0, 6)

	dir := t.TempDir()
	opts := Options{ReconnectBase: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond}
	f, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first catch-up", caughtUp(f, tp.db))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Advance and compact: Save seals the journal, records the new
	// checkpoint seq, and deletes the segments the follower still
	// needed.
	for i := 0; i < 4; i++ {
		tp.cut(t, clip, fmt.Sprintf("gap%d", i), int64(i), int64(i+5))
	}
	if err := tp.db.Save(tp.dir); err != nil {
		t.Fatal(err)
	}
	m := tp.db.Manifest()
	if m == nil {
		t.Fatal("primary has no manifest after Save")
	}

	f2, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.DB().Seq() >= m.CheckpointSeq {
		t.Fatalf("test is vacuous: follower seq %d not behind checkpoint %d",
			f2.DB().Seq(), m.CheckpointSeq)
	}
	waitFor(t, "re-bootstrap catch-up", func() bool {
		return f2.Status().Bootstraps > 0 && f2.DB().Seq() == tp.db.Seq()
	})
	if got, want := f2.DB().Len(), tp.db.Len(); got != want {
		t.Errorf("follower has %d objects, primary %d", got, want)
	}
	if _, err := f2.DB().Lookup("gap3"); err != nil {
		t.Errorf("missing post-compaction write: %v", err)
	}
	if err := f2.DB().VerifyIndexes(); err != nil {
		t.Errorf("replica index divergence: %v", err)
	}
}

// TestReplTornFeedReconnect cuts the feed stream mid-frame (half a
// read delivered, then the connection dies) and checks the follower
// drops the torn tail, reconnects, and converges anyway.
func TestReplTornFeedReconnect(t *testing.T) {
	tp := newTestPrimary(t)
	clip := tp.ingest(t, "clip", 10, 5)

	// Seed the replica over a clean connection so the fault schedule
	// below hits only feed reads, not the bootstrap fetches.
	dir := t.TempDir()
	opts := Options{ReconnectBase: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond}
	f, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "seed catch-up", caughtUp(f, tp.db))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tp.cut(t, clip, "before-cut", 0, 7)
	inj := faultfs.NewInjector(faultfs.Rule{Op: "net.read", Nth: 2, Short: true})
	opts.Client = &http.Client{Transport: faultfs.WrapTransport(nil, inj)}
	f2, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()

	tp.cut(t, clip, "after-cut", 1, 9)
	waitFor(t, "post-tear catch-up", func() bool {
		return f2.DB().Seq() == tp.db.Seq() && inj.Fired() > 0
	})
	if st := f2.Status(); st.Reconnects == 0 {
		t.Errorf("status records no reconnect after a torn stream: %+v", st)
	}
	for _, name := range []string{"before-cut", "after-cut"} {
		if _, err := f2.DB().Lookup(name); err != nil {
			t.Errorf("Lookup(%q) after tear: %v", name, err)
		}
	}
	if err := f2.DB().VerifyIndexes(); err != nil {
		t.Errorf("replica index divergence: %v", err)
	}
}

// TestFailoverPromote is the crash harness: writers hammer the primary
// while a follower tails, the primary dies mid-stream, and the
// follower is promoted. The promoted catalog must hold an exact prefix
// of the primary's acked writes, verify its indexes clean, and accept
// new writes (including fresh payload blobs) immediately.
func TestFailoverPromote(t *testing.T) {
	tp := newTestPrimary(t, catalog.WithWALSegmentRecords(8))
	clip := tp.ingest(t, "clip", 16, 6)

	reg := telemetry.NewRegistry()
	f, err := Start(tp.srv.URL, t.TempDir(), Options{
		Registry:      reg,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFor(t, "follower ready", func() bool { ok, _ := f.Ready(); return ok })

	// Acked writes, in seq order (one writer goroutine per catalog
	// write path would be nice, but names must map to a total order for
	// the prefix check, so a single writer records the order and a
	// second goroutine supplies concurrency on the read side).
	const writes = 30
	acked := make([]string, 0, writes)
	var ackedMu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			name := fmt.Sprintf("failover%d", i)
			if _, err := tp.db.SelectDuration(clip, name, int64(i%8), int64(i%8+6)); err != nil {
				return
			}
			ackedMu.Lock()
			acked = append(acked, name)
			ackedMu.Unlock()
		}
	}()
	// Concurrent reads on the replica while it applies the stream.
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-done:
				return
			default:
			}
			db := f.DB()
			db.Len()
			db.Lookup("clip")
		}
	}()
	<-done
	<-readsDone

	// Kill the primary mid-stream: open feed connections die with it.
	tp.srv.CloseClientConnections()
	tp.srv.Close()

	if err := f.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := f.Promote(); err != nil {
		t.Fatalf("second promote not idempotent: %v", err)
	}
	if ok, _ := f.Ready(); !ok || !f.Promoted() || f.PrimaryURL() != "" {
		t.Error("promoted follower not ready or still pointing at a primary")
	}
	st := f.Status()
	if st.Role != "primary" || !st.Ready || st.LagBytes != 0 {
		t.Errorf("post-promote status = %+v", st)
	}

	// Prefix invariant: seq order equals write order, so the promoted
	// catalog must hold failover0..k-1 and nothing after — a gap would
	// mean replication reordered or dropped an acked write.
	db := f.DB()
	if db.Seq() > tp.db.Seq() {
		t.Errorf("follower seq %d ahead of primary %d", db.Seq(), tp.db.Seq())
	}
	ackedMu.Lock()
	total := len(acked)
	ackedMu.Unlock()
	prefix := 0
	for prefix < total {
		if _, err := db.Lookup(acked[prefix]); err != nil {
			break
		}
		prefix++
	}
	for i := prefix; i < total; i++ {
		if _, err := db.Lookup(acked[i]); err == nil {
			t.Fatalf("replica has %q but is missing %q: not a prefix of the acked order",
				acked[i], acked[prefix])
		}
	}
	if err := db.VerifyIndexes(); err != nil {
		t.Fatalf("promoted index divergence: %v", err)
	}

	// The promoted catalog must take writes, including a fresh payload
	// blob — which must not collide with any file replicated over.
	newClip, err := db.Ingest("post-promote-clip", genVideo(8, 7), catalog.IngestOptions{})
	if err != nil {
		t.Fatalf("ingest after promote: %v", err)
	}
	if _, err := db.SelectDuration(newClip, "post-promote-cut", 1, 6); err != nil {
		t.Fatalf("cut after promote: %v", err)
	}
	v, err := db.Expand(newClip)
	if err != nil || len(v.Video) != 8 {
		t.Fatalf("expand after promote: %v (frames %d)", err, len(v.Video))
	}

	// Promotion wrote a full snapshot: a reopen of the directory sees
	// the same catalog.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

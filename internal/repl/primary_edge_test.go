package repl

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/fixtures"
)

// A catalog without a segmented journal (the in-memory test setup) can
// still serve snapshots, but has no WAL to stream: the feed refuses
// rather than hanging a follower on a silent empty stream.
func TestPrimaryWithoutSegmentedJournal(t *testing.T) {
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(3, 32, 24, 5), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(db, nil, t.TempDir(), nil)

	rec := httptest.NewRecorder()
	p.HandleWAL(rec, httptest.NewRequest("GET", "/v1/repl/wal?from_seq=0", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("wal without segmented journal = %d, want 500", rec.Code)
	}
	if _, ok := p.startCursor(); ok {
		t.Error("startCursor ok without a segmented journal")
	}

	// Snapshot still works, with X-Repl-Seq from the live sequence
	// number since there is no manifest to pin it.
	rec = httptest.NewRecorder()
	p.HandleSnapshot(rec, httptest.NewRequest("GET", "/v1/repl/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d (%s)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Repl-Seq"); got != strconv.FormatUint(db.Seq(), 10) {
		t.Errorf("X-Repl-Seq = %q, want %d", got, db.Seq())
	}
	if rec.Body.Len() == 0 {
		t.Error("snapshot body empty")
	}
}

func TestHandleSnapshotSaveFailure(t *testing.T) {
	// A regular file where the database directory should be: Save
	// cannot create the directory and must surface the error.
	notDir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(fixtures.NewMemDB(), nil, notDir, nil)
	rec := httptest.NewRecorder()
	p.HandleSnapshot(rec, httptest.NewRequest("GET", "/v1/repl/snapshot", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("snapshot into unwritable dir = %d, want 500", rec.Code)
	}
}

// backlog is the byte-lag estimate carried on heartbeats: zero at the
// durable boundary, positive behind it, and tolerant of segments that
// compaction already deleted.
func TestBacklogEstimate(t *testing.T) {
	tp := newTestPrimary(t, catalog.WithWALSegmentRecords(2))
	for i := 0; i < 5; i++ {
		tp.ingest(t, "clip"+strconv.Itoa(i), 3, int64(i))
	}
	durSeg, durOff, ok := tp.db.WALDurableBoundary()
	if !ok {
		t.Fatal("no durable boundary")
	}
	if got := tp.p.backlog(cursor{seg: durSeg, off: durOff}, durSeg, durOff); got != 0 {
		t.Errorf("backlog at boundary = %d, want 0", got)
	}
	behind := tp.p.backlog(cursor{seg: 1}, durSeg, durOff)
	if behind == 0 {
		t.Error("backlog from segment 1 = 0, want > 0")
	}
	if mid := tp.p.backlog(cursor{seg: 1, off: 8}, durSeg, durOff); mid != behind-8 {
		t.Errorf("backlog with mid-segment offset = %d, want %d", mid, behind-8)
	}

	// Compact everything; a cursor pointing at deleted segments counts
	// only what still exists.
	if err := tp.db.Save(tp.dir); err != nil {
		t.Fatal(err)
	}
	durSeg, durOff, _ = tp.db.WALDurableBoundary()
	if got := tp.p.backlog(cursor{seg: 1}, durSeg, durOff); got != uint64(durOff) {
		t.Errorf("backlog over compacted segments = %d, want %d (active only)", got, durOff)
	}
}

// HandleBlobs skips payloads it cannot open (quarantined, or deleted
// under the listing) instead of failing the whole inventory: the
// follower would fail to fetch them anyway.
func TestHandleBlobsSkipsUnopenable(t *testing.T) {
	tp := newTestPrimary(t)
	tp.ingest(t, "a", 3, 1)
	tp.ingest(t, "b", 3, 2)

	// Payload 1 vanishes between listing and open (a raced delete).
	path := filepath.Join(tp.dir, blob.FileName(blob.ID(1)))
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	tp.p.HandleBlobs(rec, httptest.NewRequest("GET", "/v1/repl/blobs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("blobs = %d (%s)", rec.Code, rec.Body.String())
	}
	var infos []blobInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	for _, bi := range infos {
		if bi.ID == 1 {
			t.Errorf("missing blob 1 still listed: %+v", infos)
		}
	}
	if len(infos) == 0 {
		t.Error("inventory empty, want the intact blob")
	}
}

package repl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
)

// newBareFollower builds a follower around an existing replica dir
// without starting the tail loop, for exercising internals directly.
func newBareFollower(t *testing.T, primaryURL, dir string) *Follower {
	t.Helper()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := catalog.Open(dir, store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		db.CloseJournal()
		store.Close()
	})
	return &Follower{
		primary: strings.TrimRight(primaryURL, "/"),
		dir:     dir,
		client:  &http.Client{},
		db:      db,
		store:   store,
		done:    make(chan struct{}),
	}
}

func TestStartFailsWithoutPrimaryOrLocalState(t *testing.T) {
	// A fresh dir needs one successful bootstrap; a dead primary must
	// fail Start rather than spin forever with nothing to serve.
	_, err := Start("http://127.0.0.1:1", t.TempDir(), Options{})
	if err == nil {
		t.Fatal("Start with no local state and no primary succeeded")
	}
}

func TestFollowerNotReadyWhilePrimaryDown(t *testing.T) {
	// Seed a replica, then restart it against a dead primary: Start
	// succeeds from local state, serves reads, and reports not-ready
	// with a reason while the reconnect loop churns.
	tp := newTestPrimary(t)
	tp.ingest(t, "clip", 8, 11)
	dir := t.TempDir()
	opts := Options{ReconnectBase: time.Millisecond, ReconnectMax: 5 * time.Millisecond}
	f, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "seed catch-up", caughtUp(f, tp.db))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tp.srv.Close()

	f2, err := Start(tp.srv.URL, dir, opts)
	if err != nil {
		t.Fatalf("Start from local state with primary down: %v", err)
	}
	defer f2.Close()
	if _, err := f2.DB().Lookup("clip"); err != nil {
		t.Errorf("replica reads while primary down: %v", err)
	}
	if ok, reason := f2.Ready(); ok || reason == "" {
		t.Errorf("Ready() = %v, %q; want not ready with a reason", ok, reason)
	}
	waitFor(t, "reconnect attempts recorded", func() bool {
		st := f2.Status()
		return st.Reconnects > 0 && st.LastError != ""
	})
	if url := f2.PrimaryURL(); url != tp.srv.URL {
		t.Errorf("PrimaryURL() = %q, want %q", url, tp.srv.URL)
	}
	if f2.Promoted() {
		t.Error("unpromoted follower reports Promoted")
	}
}

func TestTailOnceStatusErrors(t *testing.T) {
	var status int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", status)
	}))
	defer srv.Close()
	f := newBareFollower(t, srv.URL, t.TempDir())

	status = http.StatusInternalServerError
	if err := f.tailOnce(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "500") {
		t.Errorf("500 feed: err = %v", err)
	}
	status = http.StatusGone
	if err := f.tailOnce(context.Background()); !errors.Is(err, errGone) {
		t.Errorf("410 feed: err = %v, want errGone", err)
	}
}

func TestApplyRecordRejectsGarbage(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	f := newBareFollower(t, srv.URL, t.TempDir())
	if err := f.applyRecord(context.Background(), []byte("not a journal record")); err == nil {
		t.Fatal("garbage record applied")
	}
}

func TestEnsureBlobFetchFailure(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	f := newBareFollower(t, srv.URL, t.TempDir())
	if err := f.ensureBlob(context.Background(), 7); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing blob fetch: err = %v", err)
	}
}

func TestInstallBlobSizeMismatch(t *testing.T) {
	f := newBareFollower(t, "http://127.0.0.1:1", t.TempDir())
	// Declared length exceeds the delivered bytes: a connection that
	// died mid-payload must not install a truncated file.
	err := f.installBlob(3, strings.NewReader("abc"), 10)
	if err == nil {
		t.Fatal("truncated payload installed")
	}
	if err := f.installBlob(3, strings.NewReader("payload"), 7); err != nil {
		t.Fatalf("exact-length install: %v", err)
	}
	// Installed payloads pass the store's sidecar verification.
	b, err := f.store.Open(3)
	if err != nil {
		t.Fatalf("open installed blob: %v", err)
	}
	if data, err := b.ReadSpan(0, 7); err != nil || string(data) != "payload" {
		t.Errorf("installed payload = %q, %v", data, err)
	}
	// Reserve took effect: the next Create must skip past id 3.
	id, _, err := f.store.Create()
	if err != nil {
		t.Fatal(err)
	}
	if id <= 3 {
		t.Errorf("Create allocated %d over an installed payload", id)
	}
}

func TestReloadLocalReopensFromDisk(t *testing.T) {
	tp := newTestPrimary(t)
	tp.ingest(t, "clip", 6, 12)
	dir := t.TempDir()
	f, err := Start(tp.srv.URL, dir, Options{
		ReconnectBase: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "catch-up", caughtUp(f, tp.db))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := newBareFollower(t, tp.srv.URL, dir)
	before := f2.DB()
	if err := f2.reloadLocal(); err != nil {
		t.Fatal(err)
	}
	after := f2.DB()
	if after == before {
		t.Error("reload did not replace the catalog")
	}
	if _, err := after.Lookup("clip"); err != nil {
		t.Errorf("reloaded replica: %v", err)
	}
}

func TestHandleWALRequestErrors(t *testing.T) {
	tp := newTestPrimary(t)
	clip := tp.ingest(t, "clip", 6, 13)
	tp.cut(t, clip, "cut", 0, 4)
	if err := tp.db.Save(tp.dir); err != nil {
		t.Fatal(err)
	}

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(tp.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/v1/repl/wal"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing from_seq: %d", resp.StatusCode)
	}
	if resp := get("/v1/repl/wal?from_seq=junk"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from_seq: %d", resp.StatusCode)
	}
	// Save advanced the checkpoint past seq 0, so a from-scratch resume
	// is told to bootstrap instead.
	if resp := get("/v1/repl/wal?from_seq=0"); resp.StatusCode != http.StatusGone {
		t.Errorf("compacted from_seq: %d, want 410", resp.StatusCode)
	}
	if resp := get("/v1/repl/blob/junk"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad blob id: %d", resp.StatusCode)
	}
	if resp := get("/v1/repl/blob/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing blob: %d", resp.StatusCode)
	}
}

func TestCheckpointSeqWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := catalog.Open(dir, store)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		db.CloseJournal()
		store.Close()
	}()
	p := NewPrimary(db, store, dir, nil)
	if got := p.checkpointSeq(); got != 0 {
		t.Errorf("checkpointSeq with no manifest = %d", got)
	}
}

// failAfter errors after n bytes, exercising WriteFrame's error
// returns (header and payload writes).
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteFrameErrors(t *testing.T) {
	f := Frame{Type: TypeRecord, Seq: 1, Payload: []byte("payload")}
	if err := WriteFrame(&failAfter{n: 0}, f); err == nil {
		t.Error("header write failure not reported")
	}
	if err := WriteFrame(&failAfter{n: frameHeaderLen}, f); err == nil {
		t.Error("payload write failure not reported")
	}
}

package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeRecord, Seq: 42, Payload: []byte("journal record bytes")},
		{Type: TypeHeartbeat, Seq: 99, Backlog: 1 << 20},
		{Type: TypeGone, Seq: 7},
		{Type: TypeRecord, Seq: 43, Payload: []byte{}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Backlog != want.Backlog ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	// Stream exhausted at a frame boundary: clean EOF, not ErrBadFrame.
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("at end: got %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	encode := func(f Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	rec := encode(Frame{Type: TypeRecord, Seq: 1, Payload: []byte("payload")})

	cases := map[string][]byte{
		"bad magic":     append([]byte("XXXX"), rec[4:]...),
		"unknown type":  append(append(append([]byte{}, rec[:4]...), 'Z'), rec[5:]...),
		"flipped crc":   flip(rec, 27), // crc lives at header bytes 25..28
		"torn header":   rec[:10],
		"torn payload":  rec[:len(rec)-3],
		"flipped bytes": flip(rec, len(rec)-1), // payload bit flip fails the crc
	}
	for name, data := range cases {
		_, err := ReadFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

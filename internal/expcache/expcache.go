// Package expcache provides the expansion cache backing
// catalog.Expand: a byte-accounted LRU with singleflight deduplication
// and atomic observability counters.
//
// The paper stores derived objects implicitly — a derivation object is
// a few hundred bytes while its expansion is megabytes of decoded
// elements — so expansion is the hot path of the whole system. The
// cache bounds the resident bytes of expanded values (LRU eviction),
// collapses concurrent expansions of the same object into one decode
// (singleflight), and counts everything so operators can see hit
// rates, evictions and decode time without a profiler.
package expcache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is a byte-accounted LRU keyed by K with singleflight
// computation of missing values. The zero value is not usable; use
// New. Safe for concurrent use.
//
// A value's size is reported by the compute function when it is
// produced; resident bytes never exceed the configured capacity. A
// single value larger than the whole capacity is returned to the
// caller but not kept resident.
type Cache[K comparable, V any] struct {
	capacity int64 // bytes; <= 0 means unbounded

	mu      sync.Mutex
	entries map[K]*list.Element
	lru     *list.List // front = most recently used
	flights map[K]*flight[V]
	fillObs Observer // nil unless SetFillObserver was called

	stats stats
}

// Observer receives the wall time of each miss fill (one observation
// per compute call, successful or not). telemetry.*Histogram satisfies
// it; the local interface keeps this package dependency-free.
type Observer interface {
	Observe(d time.Duration)
}

// SetFillObserver installs obs to receive miss-fill latencies. Call
// before the cache is shared across goroutines, or accept that earlier
// fills go unobserved.
func (c *Cache[K, V]) SetFillObserver(obs Observer) {
	c.mu.Lock()
	c.fillObs = obs
	c.mu.Unlock()
}

// entry is an LRU cell.
type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// flight is one in-progress computation shared by concurrent callers.
type flight[V any] struct {
	done chan struct{}
	val  V
	size int64
	err  error
}

// stats holds the atomic counters behind Stats.
type stats struct {
	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	bytesResident atomic.Int64
	inFlight      atomic.Int64
	computeNanos  atomic.Int64
	errors        atomic.Int64
}

// StatsSnapshot is a point-in-time copy of the cache counters.
type StatsSnapshot struct {
	// Hits counts lookups served from resident values plus callers
	// that joined an in-flight computation (they avoided a decode).
	Hits int64 `json:"hits"`
	// Misses counts computations started (actual decodes).
	Misses int64 `json:"misses"`
	// Evictions counts values dropped to respect the byte capacity.
	Evictions int64 `json:"evictions"`
	// BytesResident is the byte account of currently cached values.
	BytesResident int64 `json:"bytes_resident"`
	// CapacityBytes is the configured bound (0 = unbounded).
	CapacityBytes int64 `json:"capacity_bytes"`
	// Entries is the number of resident values.
	Entries int64 `json:"entries"`
	// InFlight is the number of computations running right now.
	InFlight int64 `json:"in_flight"`
	// ComputeNanos is the cumulative wall time spent computing
	// (decoding) values, in nanoseconds.
	ComputeNanos int64 `json:"compute_nanos"`
	// Errors counts computations that returned an error (errors are
	// never cached).
	Errors int64 `json:"errors"`
}

// New returns a cache bounded to capacityBytes of resident values.
// capacityBytes <= 0 means unbounded.
func New[K comparable, V any](capacityBytes int64) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacityBytes,
		entries:  map[K]*list.Element{},
		lru:      list.New(),
		flights:  map[K]*flight[V]{},
	}
}

// Capacity returns the configured byte bound (0 = unbounded).
func (c *Cache[K, V]) Capacity() int64 {
	if c.capacity <= 0 {
		return 0
	}
	return c.capacity
}

// Get returns the resident value for key, marking it recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it at most once across
// concurrent callers. compute returns the value, its size in bytes,
// and an error; on success the value is inserted into the LRU (then
// trimmed to capacity). Errors are returned to every waiting caller
// and nothing is cached.
//
// compute runs without the cache lock held, so it may recursively call
// Do with *different* keys (expansion of derivation inputs). Recursing
// on the same key deadlocks — the catalog's acyclic derivation graph
// rules that out by construction.
func (c *Cache[K, V]) Do(key K, compute func() (V, int64, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.hits.Add(1)
		v := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.flights[key]; ok {
		// Join the in-flight computation: this caller avoided a
		// decode, which is the cache doing its job — count a hit.
		c.stats.hits.Add(1)
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.flights[key] = fl
	c.stats.misses.Add(1)
	c.stats.inFlight.Add(1)
	fillObs := c.fillObs
	c.mu.Unlock()

	start := time.Now()
	fl.val, fl.size, fl.err = compute()
	elapsed := time.Since(start)
	c.stats.computeNanos.Add(elapsed.Nanoseconds())
	if fillObs != nil {
		fillObs.Observe(elapsed)
	}
	c.stats.inFlight.Add(-1)
	if fl.err != nil {
		c.stats.errors.Add(1)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if fl.err == nil {
		c.insertLocked(key, fl.val, fl.size)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// insertLocked adds a value and evicts LRU entries beyond capacity.
// Assumes c.mu is held.
func (c *Cache[K, V]) insertLocked(key K, val V, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.entries[key]; ok {
		// Raced with a concurrent insert of the same key (possible
		// only via Invalidate between flight removal and insert);
		// replace in place.
		old := el.Value.(*entry[K, V])
		c.stats.bytesResident.Add(size - old.size)
		old.val, old.size = val, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&entry[K, V]{key: key, val: val, size: size})
		c.stats.bytesResident.Add(size)
	}
	if c.capacity > 0 {
		for c.stats.bytesResident.Load() > c.capacity && c.lru.Len() > 0 {
			c.evictLocked(c.lru.Back())
		}
	}
}

// evictLocked removes one LRU element. Assumes c.mu is held.
func (c *Cache[K, V]) evictLocked(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.stats.bytesResident.Add(-e.size)
	c.stats.evictions.Add(1)
}

// Invalidate drops the resident value for key, if any. An in-flight
// computation for the key is not interrupted; its result will still be
// inserted when it completes.
func (c *Cache[K, V]) Invalidate(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.stats.bytesResident.Add(-e.size)
	}
}

// Purge drops every resident value (not counted as evictions).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[K]*list.Element{}
	c.lru.Init()
	c.stats.bytesResident.Store(0)
}

// Len returns the number of resident values.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the current resident byte account.
func (c *Cache[K, V]) Bytes() int64 { return c.stats.bytesResident.Load() }

// Stats returns a snapshot of the counters.
func (c *Cache[K, V]) Stats() StatsSnapshot {
	c.mu.Lock()
	entries := int64(c.lru.Len())
	c.mu.Unlock()
	return StatsSnapshot{
		Hits:          c.stats.hits.Load(),
		Misses:        c.stats.misses.Load(),
		Evictions:     c.stats.evictions.Load(),
		BytesResident: c.stats.bytesResident.Load(),
		CapacityBytes: c.Capacity(),
		Entries:       entries,
		InFlight:      c.stats.inFlight.Load(),
		ComputeNanos:  c.stats.computeNanos.Load(),
		Errors:        c.stats.errors.Load(),
	}
}

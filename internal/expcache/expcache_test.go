package expcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[int, string](1 << 20)
	calls := 0
	compute := func() (string, int64, error) { calls++; return "v", 1, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do(7, compute)
		if err != nil || v != "v" {
			t.Fatalf("Do = %q, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int, string](1 << 20)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.Do(1, func() (string, int64, error) { calls++; return "", 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("failed compute ran %d times, want 2 (errors must not be cached)", calls)
	}
	if st := c.Stats(); st.Errors != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New[int, int](100)
	put := func(key int, size int64) {
		t.Helper()
		if _, err := c.Do(key, func() (int, int64, error) { return key, size, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put(1, 40)
	put(2, 40)
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("resident = %d B / %d entries", c.Bytes(), c.Len())
	}
	// Touch 1 so 2 becomes LRU, then overflow.
	if _, ok := c.Get(1); !ok {
		t.Fatal("key 1 missing")
	}
	put(3, 40)
	if _, ok := c.Get(2); ok {
		t.Error("key 2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("key 1 should be resident (recently used)")
	}
	if c.Bytes() > 100 {
		t.Errorf("resident %d B exceeds capacity 100", c.Bytes())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizeValueNotResident(t *testing.T) {
	c := New[int, int](100)
	v, err := c.Do(1, func() (int, int64, error) { return 42, 500, nil })
	if err != nil || v != 42 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("oversize value kept resident: %d entries, %d B", c.Len(), c.Bytes())
	}
}

func TestUnboundedCapacity(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 100; i++ {
		c.Do(i, func() (int, int64, error) { return i, 1 << 20, nil })
	}
	if c.Len() != 100 {
		t.Errorf("unbounded cache evicted: %d entries", c.Len())
	}
}

func TestInvalidateAndPurge(t *testing.T) {
	c := New[int, int](1 << 20)
	c.Do(1, func() (int, int64, error) { return 1, 10, nil })
	c.Do(2, func() (int, int64, error) { return 2, 10, nil })
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Error("key 1 survived Invalidate")
	}
	if c.Bytes() != 10 {
		t.Errorf("bytes = %d after invalidate, want 10", c.Bytes())
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("purge left %d entries / %d B", c.Len(), c.Bytes())
	}
}

func TestSingleflightConcurrent(t *testing.T) {
	c := New[int, int](1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(9, func() (int, int64, error) {
				computes.Add(1)
				<-release // hold the flight open so everyone piles on
				return 99, 8, nil
			})
			if err != nil || v != 99 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times under contention, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, waiters-1)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New[int, int](1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				key := k % 10
				v, err := c.Do(key, func() (int, int64, error) { return key * 2, 4, nil })
				if err != nil || v != key*2 {
					t.Errorf("goroutine %d: Do(%d) = %d, %v", g, key, v, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 10 {
		t.Errorf("entries = %d, want 10", c.Len())
	}
}

func TestStatsSnapshotJSONShape(t *testing.T) {
	c := New[int, int](64)
	c.Do(1, func() (int, int64, error) { return 1, 8, nil })
	st := c.Stats()
	if st.CapacityBytes != 64 || st.BytesResident != 8 || st.Entries != 1 {
		t.Errorf("snapshot = %s", fmt.Sprintf("%+v", st))
	}
	if st.ComputeNanos < 0 {
		t.Errorf("compute nanos = %d", st.ComputeNanos)
	}
}

package audio

import (
	"math"
	"testing"
)

func TestNewBufferFrames(t *testing.T) {
	b := NewBuffer(100, 2)
	if b.Frames() != 100 || len(b.Samples) != 200 {
		t.Errorf("frames=%d len=%d", b.Frames(), len(b.Samples))
	}
	var empty Buffer
	if empty.Frames() != 0 {
		t.Error("zero buffer should have 0 frames")
	}
}

func TestSinePeakAndRMS(t *testing.T) {
	b := Sine(44100, 2, 440, 44100, 0.5)
	peak := b.Peak()
	want := math.MaxInt16 / 2
	if peak < want-200 || peak > want+200 {
		t.Errorf("peak = %d, want ≈%d", peak, want)
	}
	// RMS of a sine is peak/sqrt(2).
	rms := b.RMS()
	if math.Abs(rms-float64(want)/math.Sqrt2) > 300 {
		t.Errorf("rms = %v", rms)
	}
}

func TestGainNormalization(t *testing.T) {
	b := Sine(4410, 1, 440, 44100, 0.25)
	peak := b.Peak()
	b.Gain(float64(32767) / float64(peak))
	if got := b.Peak(); got < 32000 {
		t.Errorf("normalized peak = %d", got)
	}
}

func TestGainClamps(t *testing.T) {
	b := &Buffer{Channels: 1, Samples: []int16{30000, -30000}}
	b.Gain(10)
	if b.Samples[0] != math.MaxInt16 || b.Samples[1] != math.MinInt16 {
		t.Errorf("samples = %v", b.Samples)
	}
}

func TestMixIntoSaturates(t *testing.T) {
	dst := &Buffer{Channels: 1, Samples: []int16{30000, -30000, 100}}
	src := &Buffer{Channels: 1, Samples: []int16{10000, -10000, 50}}
	if err := MixInto(dst, src); err != nil {
		t.Fatal(err)
	}
	if dst.Samples[0] != math.MaxInt16 || dst.Samples[1] != math.MinInt16 || dst.Samples[2] != 150 {
		t.Errorf("mixed = %v", dst.Samples)
	}
}

func TestMixIntoChannelMismatch(t *testing.T) {
	if err := MixInto(NewBuffer(4, 2), NewBuffer(4, 1)); err != ErrChannelMismatch {
		t.Errorf("err = %v", err)
	}
}

func TestMixIntoShorterSource(t *testing.T) {
	dst := NewBuffer(10, 1)
	src := &Buffer{Channels: 1, Samples: []int16{5, 5}}
	if err := MixInto(dst, src); err != nil {
		t.Fatal(err)
	}
	if dst.Samples[0] != 5 || dst.Samples[2] != 0 {
		t.Errorf("mixed = %v", dst.Samples[:4])
	}
}

func TestSliceSharesStorage(t *testing.T) {
	b := NewBuffer(10, 2)
	s := b.Slice(2, 4)
	if s.Frames() != 2 {
		t.Errorf("frames = %d", s.Frames())
	}
	s.Samples[0] = 7
	if b.Samples[4] != 7 {
		t.Error("Slice must share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := Sine(100, 1, 440, 44100, 0.5)
	c := b.Clone()
	c.Samples[0] = 12345
	if b.Samples[0] == 12345 {
		t.Error("Clone shares storage")
	}
}

func TestSNR(t *testing.T) {
	ref := Sine(4410, 1, 440, 44100, 0.5)
	if !math.IsInf(SNR(ref, ref.Clone()), 1) {
		t.Error("identical buffers must have infinite SNR")
	}
	noisy := ref.Clone()
	for i := range noisy.Samples {
		noisy.Samples[i] += int16(i % 7)
	}
	snr := SNR(ref, noisy)
	if snr < 20 || snr > 120 {
		t.Errorf("snr = %v", snr)
	}
}

func TestSweepIsNonStationary(t *testing.T) {
	b := Sweep(44100, 1, 100, 4000, 44100, 0.8)
	// Zero-crossing rate in the last tenth must exceed the first tenth.
	zc := func(s []int16) int {
		n := 0
		for i := 1; i < len(s); i++ {
			if (s[i-1] < 0) != (s[i] < 0) {
				n++
			}
		}
		return n
	}
	first := zc(b.Samples[:4410])
	last := zc(b.Samples[len(b.Samples)-4410:])
	if last <= first {
		t.Errorf("sweep zero crossings: first=%d last=%d", first, last)
	}
}

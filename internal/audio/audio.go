// Package audio provides PCM sample buffers, synthetic signal
// generation, and level analysis for the audio substrate.
//
// Samples are int16 regardless of on-disk sample size; channel data is
// interleaved (L R L R ... for stereo) as in the paper's Figure 2
// example where "audio samples follow the associated video frame".
package audio

import (
	"errors"
	"math"
)

// ErrChannelMismatch is returned when combining buffers whose channel
// counts differ.
var ErrChannelMismatch = errors.New("audio: channel count mismatch")

// Buffer holds interleaved PCM samples.
type Buffer struct {
	Channels int
	Samples  []int16 // length = frames * Channels
}

// NewBuffer allocates a zeroed buffer for the given number of frames
// (sample tuples across channels).
func NewBuffer(frames, channels int) *Buffer {
	return &Buffer{Channels: channels, Samples: make([]int16, frames*channels)}
}

// Frames returns the number of per-channel sample tuples.
func (b *Buffer) Frames() int {
	if b.Channels == 0 {
		return 0
	}
	return len(b.Samples) / b.Channels
}

// Clone returns a deep copy.
func (b *Buffer) Clone() *Buffer {
	return &Buffer{Channels: b.Channels, Samples: append([]int16(nil), b.Samples...)}
}

// Slice returns the sub-buffer covering frames [from, to). The
// returned buffer shares storage with b.
func (b *Buffer) Slice(from, to int) *Buffer {
	return &Buffer{Channels: b.Channels, Samples: b.Samples[from*b.Channels : to*b.Channels]}
}

// Peak returns the maximum absolute sample value, 0..32768.
func (b *Buffer) Peak() int {
	peak := 0
	for _, s := range b.Samples {
		v := int(s)
		if v < 0 {
			v = -v
		}
		if v > peak {
			peak = v
		}
	}
	return peak
}

// RMS returns the root-mean-square level of the buffer.
func (b *Buffer) RMS() float64 {
	if len(b.Samples) == 0 {
		return 0
	}
	var sq float64
	for _, s := range b.Samples {
		sq += float64(s) * float64(s)
	}
	return math.Sqrt(sq / float64(len(b.Samples)))
}

// Gain scales every sample by factor, clamping to the int16 range.
// This is the kernel of the paper's "audio normalization" derivation.
func (b *Buffer) Gain(factor float64) {
	for i, s := range b.Samples {
		v := math.Round(float64(s) * factor)
		if v > math.MaxInt16 {
			v = math.MaxInt16
		}
		if v < math.MinInt16 {
			v = math.MinInt16
		}
		b.Samples[i] = int16(v)
	}
}

// MixInto adds src into dst sample-by-sample with saturation; both
// buffers must have the same channel count. If src is shorter, only
// the overlapping prefix is mixed. Used by temporal composition to
// present simultaneous audio components (music + narration).
func MixInto(dst, src *Buffer) error {
	if dst.Channels != src.Channels {
		return ErrChannelMismatch
	}
	n := len(dst.Samples)
	if len(src.Samples) < n {
		n = len(src.Samples)
	}
	for i := 0; i < n; i++ {
		v := int32(dst.Samples[i]) + int32(src.Samples[i])
		if v > math.MaxInt16 {
			v = math.MaxInt16
		}
		if v < math.MinInt16 {
			v = math.MinInt16
		}
		dst.Samples[i] = int16(v)
	}
	return nil
}

// Sine fills a new buffer with a sine tone of the given frequency (Hz)
// at the given sample rate and amplitude (0..1).
func Sine(frames, channels int, freqHz, sampleRateHz, amplitude float64) *Buffer {
	b := NewBuffer(frames, channels)
	scale := amplitude * math.MaxInt16
	for f := 0; f < frames; f++ {
		v := int16(scale * math.Sin(2*math.Pi*freqHz*float64(f)/sampleRateHz))
		for c := 0; c < channels; c++ {
			b.Samples[f*channels+c] = v
		}
	}
	return b
}

// Sweep fills a new buffer with a linear frequency sweep, giving
// codecs a non-stationary signal.
func Sweep(frames, channels int, fromHz, toHz, sampleRateHz, amplitude float64) *Buffer {
	b := NewBuffer(frames, channels)
	scale := amplitude * math.MaxInt16
	phase := 0.0
	for f := 0; f < frames; f++ {
		t := float64(f) / float64(frames)
		freq := fromHz + (toHz-fromHz)*t
		phase += 2 * math.Pi * freq / sampleRateHz
		v := int16(scale * math.Sin(phase))
		for c := 0; c < channels; c++ {
			b.Samples[f*channels+c] = v
		}
	}
	return b
}

// SNR returns the signal-to-noise ratio in dB of buffer b against
// reference ref (the codec-quality analogue of frame.PSNR); +Inf for
// identical content.
func SNR(ref, b *Buffer) float64 {
	n := len(ref.Samples)
	if len(b.Samples) < n {
		n = len(b.Samples)
	}
	var sig, noise float64
	for i := 0; i < n; i++ {
		s := float64(ref.Samples[i])
		d := s - float64(b.Samples[i])
		sig += s * s
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	if sig == 0 {
		return 0
	}
	return 10 * math.Log10(sig/noise)
}

package server

import (
	"context"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Lifecycle hardening: the handler chain wraps the mux with, from the
// outside in,
//
//  1. panic recovery — a handler panic 500s that request and bumps a
//     counter instead of killing the process;
//  2. an in-flight limiter — beyond the configured concurrency the
//     server sheds load with 503 + Retry-After rather than queueing
//     toward collapse;
//  3. a per-request deadline — the request context expires after the
//     configured timeout, and /stream and /expand observe it.
//
// Counters for all three are reported at /metrics.

// lifecycleStats counts what the hardening layer had to do.
type lifecycleStats struct {
	panics   atomic.Int64
	shed     atomic.Int64
	inFlight atomic.Int64
}

// lifecycleSnapshot is the /metrics JSON shape of lifecycleStats.
type lifecycleSnapshot struct {
	PanicsRecovered int64 `json:"panics_recovered"`
	LoadShed        int64 `json:"load_shed"`
	InFlight        int64 `json:"in_flight"`
}

func (s *lifecycleStats) snapshot() lifecycleSnapshot {
	return lifecycleSnapshot{
		PanicsRecovered: s.panics.Load(),
		LoadShed:        s.shed.Load(),
		InFlight:        s.inFlight.Load(),
	}
}

// recoverMiddleware converts a handler panic into a 500 and a counter
// increment. The response may already be partially written (e.g. a
// panic mid-stream); in that case the WriteHeader fails silently,
// which is the best that can be done without buffering every
// response.
func recoverMiddleware(stats *lifecycleStats, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				stats.panics.Add(1)
				log.Printf("server: panic in %s %s: %v", r.Method, r.URL.Path, v)
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitMiddleware bounds concurrent requests. At capacity it sheds
// immediately with 503 and a Retry-After hint instead of queueing:
// under sustained overload a bounded queue only adds latency before
// the same rejection.
func limitMiddleware(stats *lifecycleStats, slots chan struct{}, retryAfter time.Duration, next http.Handler) http.Handler {
	if slots == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			stats.inFlight.Add(1)
			defer func() {
				stats.inFlight.Add(-1)
				<-slots
			}()
			next.ServeHTTP(w, r)
		default:
			stats.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
			http.Error(w, "server overloaded", http.StatusServiceUnavailable)
		}
	})
}

// timeoutMiddleware attaches a deadline to each request's context.
// Unlike http.TimeoutHandler it does not buffer the response, so
// streaming keeps working; handlers observe the deadline through
// r.Context().
func timeoutMiddleware(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

package server

import (
	"context"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"timedmedia/internal/telemetry"
)

// Lifecycle hardening and observability: the handler chain wraps the
// mux with, from the outside in,
//
//  1. panic recovery — a handler panic 500s that request and bumps a
//     counter instead of killing the process;
//  2. request telemetry — a request ID is generated, echoed in
//     X-Request-ID and propagated via context; the response status,
//     bytes and duration feed the per-route latency histogram, the
//     trace ring and the access log;
//  3. trace capture (when configured) — completed requests are
//     recorded for deterministic replay; it wraps the limiter so shed
//     requests are captured too, flagged rather than lost (capture.go);
//  4. an in-flight limiter — beyond the configured concurrency the
//     server sheds load with 503 + Retry-After rather than queueing
//     toward collapse;
//  5. a per-request deadline — the request context expires after the
//     configured timeout, and /stream and /expand observe it;
//  6. a legacy rewrite — unversioned /objects... paths are rewritten
//     to /v1/... and counted, so deprecation is observable.
//
// Counters for all of it are reported at /metrics.

// lifecycleStats counts what the hardening layer had to do.
type lifecycleStats struct {
	panics          atomic.Int64
	shed            atomic.Int64
	inFlight        atomic.Int64
	streamTruncated atomic.Int64
}

// lifecycleSnapshot is the /metrics JSON shape of lifecycleStats.
type lifecycleSnapshot struct {
	PanicsRecovered int64 `json:"panics_recovered"`
	LoadShed        int64 `json:"load_shed"`
	InFlight        int64 `json:"in_flight"`
	// StreamsTruncated counts /stream responses cut short by a payload
	// error after the body had started (the client sees the
	// X-Stream-Error trailer).
	StreamsTruncated int64 `json:"streams_truncated"`
}

func (s *lifecycleStats) snapshot() lifecycleSnapshot {
	return lifecycleSnapshot{
		PanicsRecovered:  s.panics.Load(),
		LoadShed:         s.shed.Load(),
		InFlight:         s.inFlight.Load(),
		StreamsTruncated: s.streamTruncated.Load(),
	}
}

// recoverMiddleware converts a handler panic into a 500 and a counter
// increment. The response may already be partially written (e.g. a
// panic mid-stream); in that case the WriteHeader fails silently,
// which is the best that can be done without buffering every
// response.
func recoverMiddleware(stats *lifecycleStats, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				stats.panics.Add(1)
				log.Printf("server: panic in %s %s: %v", r.Method, r.URL.Path, v)
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitMiddleware bounds concurrent requests. At capacity it sheds
// immediately with 503 and a Retry-After hint instead of queueing:
// under sustained overload a bounded queue only adds latency before
// the same rejection.
func limitMiddleware(stats *lifecycleStats, slots chan struct{}, retryAfter time.Duration, next http.Handler) http.Handler {
	if slots == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			stats.inFlight.Add(1)
			defer func() {
				stats.inFlight.Add(-1)
				<-slots
			}()
			next.ServeHTTP(w, r)
		default:
			stats.shed.Add(1)
			// Tell the capture middleware (which sits outside this
			// limiter precisely so it can see sheds) that this request
			// was rejected before any handler ran: the trace records it
			// as workload truth, flagged so replay skips it.
			if cs := captureFrom(r.Context()); cs != nil {
				cs.shed = true
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
			writeError(w, http.StatusServiceUnavailable, CodeOverloaded, "server overloaded")
		}
	})
}

// timeoutMiddleware attaches a deadline to each request's context.
// Unlike http.TimeoutHandler it does not buffer the response, so
// streaming keeps working; handlers observe the deadline through
// r.Context().
func timeoutMiddleware(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Server-package context keys: the matched route name (filled in by
// the registration wrapper — http.Request.Pattern needs Go 1.23, and
// the module supports 1.22) and the legacy-route flag.
type serverCtxKey int

const (
	routeKey serverCtxKey = iota
	legacyKey
	captureKey
)

// routeHolder lets the routing layer report the matched route name
// back to the telemetry middleware that wrapped it.
type routeHolder struct{ name string }

func routeFrom(ctx context.Context) *routeHolder {
	rh, _ := ctx.Value(routeKey).(*routeHolder)
	return rh
}

// isLegacy reports whether the request arrived on an unversioned
// route (handlers keep the pre-/v1 response shapes there).
func isLegacy(ctx context.Context) bool {
	v, _ := ctx.Value(legacyKey).(bool)
	return v
}

// statusRecorder captures the status and body size of a response, and
// keeps Flush working for streaming handlers. Unwrap supports
// http.ResponseController.
type statusRecorder struct {
	http.ResponseWriter
	status    int
	bytes     int64
	completed bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// telemetryMiddleware issues the request ID, carries the trace through
// context, and on completion feeds the per-route histogram, the trace
// ring and the access log. It sits inside recoverMiddleware: a panic
// unwinds through the deferred finalizer (recording the request as a
// 500 unless a status was already written) and is then recovered
// outside.
func (s *Server) telemetryMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := telemetry.NewRequestID()
		tr := telemetry.NewTrace(rid, r.Method, r.URL.Path)
		rh := &routeHolder{}
		ctx := telemetry.WithRequestID(r.Context(), rid)
		ctx = telemetry.WithTrace(ctx, tr)
		ctx = context.WithValue(ctx, routeKey, rh)
		w.Header().Set("X-Request-ID", rid)
		rec := &statusRecorder{ResponseWriter: w}
		method, path := r.Method, r.URL.Path
		defer func() {
			d := time.Since(start)
			status := rec.status
			if status == 0 {
				if rec.completed {
					status = http.StatusOK
				} else {
					status = http.StatusInternalServerError // panicked before writing
				}
			}
			route := rh.name
			if route == "" {
				route = "other" // unmatched: 404s, bad methods
			}
			s.reg.Histogram(telemetry.RequestFamily, `route="`+route+`"`).Observe(d)
			s.tracer.Add(tr.Finish(status, rec.bytes, d))
			if s.accessLog != nil {
				s.accessLog.LogAttrs(context.Background(), slog.LevelInfo, "request",
					slog.String("request_id", rid),
					slog.String("method", method),
					slog.String("path", path),
					slog.String("route", route),
					slog.Int("status", status),
					slog.Int64("bytes", rec.bytes),
					slog.Duration("duration", d),
				)
			}
		}()
		next.ServeHTTP(rec, r.WithContext(ctx))
		rec.completed = true
	})
}

// legacySunset is the announced removal date of the unversioned
// routes, sent as the Sunset header (RFC 8594) on every rewritten
// request.
const legacySunset = "Tue, 30 Jun 2027 00:00:00 GMT"

// legacyRewrite keeps the pre-/v1 object routes working: unversioned
// /objects... paths are rewritten in place to /v1/objects..., counted
// in tbm_legacy_requests_total, and flagged in the context so list
// responses keep their legacy bare-array shape.
//
// The rewrite is formally deprecated: every rewritten response
// carries Deprecation (RFC 9745), a Sunset date, and a Link to its
// /v1 successor, so clients and proxies can discover the migration
// mechanically instead of reading release notes.
func (s *Server) legacyRewrite(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p := r.URL.Path; p == "/objects" || strings.HasPrefix(p, "/objects/") {
			s.legacy.Inc()
			h := w.Header()
			h.Set("Deprecation", "true")
			h.Set("Sunset", legacySunset)
			h.Set("Link", `</v1`+p+`>; rel="successor-version"`)
			r2 := r.Clone(context.WithValue(r.Context(), legacyKey, true))
			r2.URL.Path = "/v1" + p
			next.ServeHTTP(w, r2)
			return
		}
		next.ServeHTTP(w, r)
	})
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/workload"
)

// The replay-equivalence oracle: record a workload against a live
// catalog, rebuild an identical catalog from the same deterministic
// ingest, replay the trace, and assert the responses are equivalent
// modulo volatile fields. Epoch numbers and object IDs differ between
// the two runs by construction — the digest normalization is exactly
// what makes them comparable.

// oracleDB rebuilds the recorded catalog's starting state: the same
// fixtures ingested in the same order. retention < 1 keeps the
// default epoch retention ring.
func oracleDB(t *testing.T, retention int) *catalog.DB {
	t.Helper()
	var opts []catalog.Option
	if retention > 0 {
		opts = append(opts, catalog.WithEpochRetention(retention))
	}
	db := catalog.New(blob.NewMemStore(), opts...)
	for i, name := range []string{"alpha", "beta"} {
		if _, err := db.Ingest(name, fixtures.Video(10, 32, 24, int64(i+1)), catalog.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// recordOracleTrace runs the reference request sequence against a
// fresh catalog with capture on: point reads, an epoch-pinned
// paginated query straddling two cut mutations, and a read of a
// just-created object.
func recordOracleTrace(t *testing.T, path string) {
	t.Helper()
	db := oracleDB(t, 0)
	rec, err := workload.CreateTrace(path, workload.TraceMeta{
		Objects: db.Len(), Seq: db.Seq(), Epoch: db.CurrentView().Epoch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, WithTraceRecorder(rec)))
	defer ts.Close()

	get(t, ts.URL+"/v1/objects/alpha", 200)
	page := get(t, ts.URL+"/v1/query?kind=video&limit=1&offset=0", 200)
	var first struct {
		Epoch      uint64 `json:"epoch"`
		NextOffset *int   `json:"next_offset"`
	}
	if err := json.Unmarshal(page, &first); err != nil {
		t.Fatal(err)
	}
	if first.NextOffset == nil {
		t.Fatal("first page reports no follow-up page")
	}
	post(t, ts.URL+"/v1/objects/alpha/cut?out=c1&from=0&to=2")
	post(t, ts.URL+"/v1/objects/beta/cut?out=c2&from=1&to=3")
	// The pinned second page reads the pre-cut epoch — recorded as a
	// 200 here (default retention keeps it), the replay-side retention
	// policy decides its fate.
	get(t, fmt.Sprintf("%s/v1/query?kind=video&limit=1&offset=%d&epoch=%d",
		ts.URL, *first.NextOffset, first.Epoch), 200)
	get(t, ts.URL+"/v1/objects/c1", 200)

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func post(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST %s = %d", url, resp.StatusCode)
	}
}

func TestReplayOracleEquivalent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.trc")
	recordOracleTrace(t, path)
	meta, records, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := workload.TraceFileDigest(path)
	if err != nil {
		t.Fatal(err)
	}

	// Two replays against two independently rebuilt catalogs: both
	// fully equivalent, and the deterministic reports byte-identical.
	var encodings [2][]byte
	for i := range encodings {
		ts := httptest.NewServer(New(oracleDB(t, 0)))
		rep, _, err := workload.Replay(ts.URL, meta, records, digest, workload.ReplayOptions{})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Equivalent {
			t.Fatalf("replay %d not equivalent: %s", i, workload.EncodeReport(rep))
		}
		if rep.Matches != len(records) {
			t.Errorf("replay %d: %d matches of %d records", i, rep.Matches, len(records))
		}
		if rep.EpochGone != 0 || rep.Mismatches != 0 {
			t.Errorf("replay %d: epoch_gone=%d mismatches=%d", i, rep.EpochGone, rep.Mismatches)
		}
		encodings[i] = workload.EncodeReport(rep)
	}
	if !bytes.Equal(encodings[0], encodings[1]) {
		t.Fatalf("replay reports differ:\n--- first\n%s\n--- second\n%s", encodings[0], encodings[1])
	}
}

// TestReplayOracleRetentionEviction replays the same trace against a
// catalog whose retention ring keeps only the current epoch: the two
// cut mutations retire the epoch the recorded query pinned, so the
// pinned page deterministically answers 410 epoch_gone. That is a
// replay-side policy consequence, counted as epoch_gone — never a
// mismatch, and byte-deterministic across replays.
func TestReplayOracleRetentionEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.trc")
	recordOracleTrace(t, path)
	meta, records, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := workload.TraceFileDigest(path)
	if err != nil {
		t.Fatal(err)
	}

	var encodings [2][]byte
	for i := range encodings {
		ts := httptest.NewServer(New(oracleDB(t, 1)))
		rep, _, err := workload.Replay(ts.URL, meta, records, digest, workload.ReplayOptions{})
		ts.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.EpochGone != 1 {
			t.Fatalf("replay %d: epoch_gone = %d, want exactly the evicted pinned page:\n%s",
				i, rep.EpochGone, workload.EncodeReport(rep))
		}
		if rep.Mismatches != 0 || !rep.Equivalent {
			t.Errorf("replay %d: eviction misclassified: mismatches=%d equivalent=%v",
				i, rep.Mismatches, rep.Equivalent)
		}
		encodings[i] = workload.EncodeReport(rep)
	}
	if !bytes.Equal(encodings[0], encodings[1]) {
		t.Fatalf("eviction replay reports differ:\n--- first\n%s\n--- second\n%s", encodings[0], encodings[1])
	}
}

package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"timedmedia/internal/workload"
)

// Trace capture records every request the server completes — method,
// path, request body (mutations), response status, normalized body
// digest, the epoch the response was served from, and the service
// time — into a workload.Recorder (tbmserve -trace-out). The trace is
// the input to deterministic replay (tbmload replay) and policy
// scoring (tbmload score).
//
// Placement in the middleware chain matters and is a recorded
// guarantee: capture sits OUTSIDE the load-shedding limiter, so a
// request rejected with 503 by the shed path is still recorded — shed
// requests are part of the workload truth a policy sweep scores on —
// but flagged Shed so replay knows the request never reached a
// handler and must not be re-issued. The limiter reports the shed
// through the captureState it finds in the request context.

// captureBodyCap bounds how much request body capture will buffer; a
// larger body is passed through unrecorded (the record keeps its
// status and digest but cannot be replayed as a mutation). The API's
// mutation bodies are key-value JSON far below this.
const captureBodyCap = 16 << 20

// captureRespCap bounds how much of a JSON response capture buffers
// for normalization; beyond it the digest falls back to raw hashing.
const captureRespCap = 8 << 20

// captureState is shared through the context between the capture
// middleware and the inner middlewares that know things about the
// request capture cannot see from outside.
type captureState struct {
	shed bool
}

func captureFrom(ctx context.Context) *captureState {
	cs, _ := ctx.Value(captureKey).(*captureState)
	return cs
}

// captureWriter observes the response: status, content type, and a
// digest of the body. JSON bodies are buffered (up to captureRespCap)
// so the digest can be normalized exactly the way replay normalizes
// its own responses; anything else — element payloads, streams — is
// hashed incrementally without buffering.
type captureWriter struct {
	http.ResponseWriter
	status  int
	ct      string
	json    bool
	buf     bytes.Buffer
	hasher  io.Writer
	rawSum  [32]byte
	started bool
}

func (cw *captureWriter) begin() {
	if cw.started {
		return
	}
	cw.started = true
	cw.ct = cw.Header().Get("Content-Type")
	cw.json = strings.HasPrefix(cw.ct, "application/json")
	if !cw.json {
		h := sha256.New()
		cw.hasher = h
	}
}

func (cw *captureWriter) WriteHeader(code int) {
	if cw.status == 0 {
		cw.status = code
	}
	cw.begin()
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	cw.begin()
	if cw.json {
		if cw.buf.Len()+len(p) <= captureRespCap {
			cw.buf.Write(p)
		} else {
			// Too large to normalize: demote to raw hashing of what
			// was buffered plus the rest.
			h := sha256.New()
			h.Write(cw.buf.Bytes())
			cw.buf.Reset()
			cw.hasher = h
			cw.json = false
		}
	}
	if cw.hasher != nil {
		cw.hasher.Write(p)
	}
	return cw.ResponseWriter.Write(p)
}

func (cw *captureWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (cw *captureWriter) Unwrap() http.ResponseWriter { return cw.ResponseWriter }

// digest finalizes the response digest with the same normalization
// replay applies (workload.BodyDigest for buffered JSON, raw SHA-256
// otherwise).
func (cw *captureWriter) digest() string {
	if cw.json {
		return workload.BodyDigest(cw.ct, cw.buf.Bytes())
	}
	if h, ok := cw.hasher.(interface{ Sum([]byte) []byte }); ok {
		return hex.EncodeToString(h.Sum(nil))
	}
	// No body was ever written (e.g. 304): digest of empty bytes.
	sum := sha256.Sum256(nil)
	return hex.EncodeToString(sum[:])
}

// captureMiddleware records completed requests into rec. It runs
// inside telemetryMiddleware (so the matched route name is visible in
// the shared routeHolder) and outside limitMiddleware (so shed
// requests are recorded too).
func (s *Server) captureMiddleware(rec *workload.Recorder, next http.Handler) http.Handler {
	if rec == nil {
		return next
	}
	epoch := time.Now()
	var logOnce sync.Once
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		at := time.Since(epoch)
		cs := &captureState{}
		ctx := context.WithValue(r.Context(), captureKey, cs)
		r = r.WithContext(ctx)

		// Buffer the request body so both the handler and the trace
		// can read it. GETs have none; oversized bodies pass through
		// unrecorded.
		var reqBody []byte
		if r.Method != http.MethodGet && r.Body != nil {
			data, err := io.ReadAll(io.LimitReader(r.Body, captureBodyCap+1))
			if err == nil && len(data) <= captureBodyCap {
				reqBody = data
				r.Body = io.NopCloser(bytes.NewReader(data))
			} else if err == nil {
				// Reassemble the oversized body for the handler.
				r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(data), r.Body))
			}
		}

		cw := &captureWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(cw, r)
		lat := time.Since(start)

		status := cw.status
		if status == 0 {
			status = http.StatusOK
		}
		path := r.URL.Path
		if r.URL.RawQuery != "" {
			path += "?" + r.URL.RawQuery
		}
		trec := workload.TraceRecord{
			AtNs:      int64(at),
			Method:    r.Method,
			Path:      path,
			Body:      reqBody,
			Status:    status,
			Digest:    cw.digest(),
			Shed:      cs.shed,
			LatencyNs: int64(lat),
		}
		if rh := routeFrom(ctx); rh != nil {
			trec.RouteName = rh.name
		}
		if cw.json {
			trec.ErrCode = workload.ErrCodeFromBody(cw.buf.Bytes())
		}
		if etag := cw.Header().Get("ETag"); len(etag) > 2 && etag[0] == '"' {
			if n, err := strconv.ParseUint(etag[1:len(etag)-1], 10, 64); err == nil {
				trec.Epoch = n
			}
		}
		if err := rec.Record(trec); err != nil {
			logOnce.Do(func() { log.Printf("server: trace capture failed, recording stopped: %v", err) })
		}
	})
}

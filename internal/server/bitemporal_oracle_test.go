package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/timebase"
	"timedmedia/internal/workload"
)

// The bitemporal oracle: a transaction-time read MUST equal a replay.
// For a journaled catalog with committed history H and any sequence S,
//
//	query(live catalog, as_of=S)  ≡  query(fresh catalog replayed to S)
//
// after volatile-field normalization (epoch numbers and request IDs
// differ by construction; workload.BodyDigest strips exactly those).
// The left side reads version chains inside one pinned epoch view; the
// right side rebuilds state record by record with a replay cap — two
// independent implementations of "the catalog at S", which is what
// makes the equivalence an oracle rather than a tautology.

// histOp is one scripted mutation: an op selector plus pre-drawn
// randomness, so a history is a pure function of its script. Greedy
// shrinking relies on that: dropping an op re-applies the remainder
// deterministically, and ops whose targets disappeared skip themselves
// — any subset of a script is itself a valid script.
type histOp struct {
	kind       int // 0 ingest, 1 cut, 2 batch, 3 multimedia, 4 sync, 5 delete
	r1, r2, r3 int64
}

func genScript(rng *rand.Rand, steps int) []histOp {
	ops := make([]histOp, steps)
	for i := range ops {
		k := rng.Intn(10)
		switch {
		case i == 0 || k < 3:
			ops[i].kind = 0 // ingest — the first op always seeds media
		case k < 5:
			ops[i].kind = 1
		case k < 7:
			ops[i].kind = 2
		case k < 8:
			ops[i].kind = 3
		case k < 9:
			ops[i].kind = 4
		default:
			ops[i].kind = 5
		}
		ops[i].r1, ops[i].r2, ops[i].r3 = rng.Int63(), rng.Int63(), rng.Int63()
	}
	return ops
}

// applyScript replays a history script onto a journaled catalog.
// Deletes target derived and multimedia objects only: deleting the
// last non-derived reader of a BLOB garbage-collects the BLOB, and a
// from-scratch replay of the interpretation record would then have
// nothing to open. Structural refusals (delete of a referenced object,
// sync on an already-deleted composition) are outcomes of the script,
// not failures.
func applyScript(t *testing.T, db *catalog.DB, prefix string, script []histOp) {
	t.Helper()
	var videos, derived, multis []core.ID
	n := 0
	for _, op := range script {
		n++
		name := fmt.Sprintf("%s-%03d", prefix, n)
		switch op.kind {
		case 0:
			id, err := db.Ingest(name, fixtures.Video(4+int(op.r1%6), 16, 12, op.r2),
				catalog.IngestOptions{Attrs: map[string]string{"lane": fmt.Sprintf("l%d", op.r3%3)}})
			if err != nil {
				t.Fatalf("ingest %s: %v", name, err)
			}
			videos = append(videos, id)
		case 1:
			if len(videos) == 0 {
				continue
			}
			src := videos[int(op.r1)%len(videos)]
			from := op.r2 % 3
			id, err := db.SelectDuration(src, name, from, from+1+op.r3%2)
			if err != nil {
				t.Fatalf("cut %s: %v", name, err)
			}
			derived = append(derived, id)
		case 2:
			if len(videos) == 0 {
				continue
			}
			src := videos[int(op.r1)%len(videos)]
			cut := func(from int64) []byte {
				return derive.EncodeParams(derive.EditParams{
					Entries: []derive.EditEntry{{Input: 0, From: from, To: from + 1}}})
			}
			ids, err := db.AddBatch([]catalog.BatchItem{
				{Name: name + "a", Op: "video-edit", Inputs: []core.ID{src}, Params: cut(op.r2 % 3)},
				{Name: name + "b", Op: "video-edit", Inputs: []core.ID{src}, Params: cut(op.r3 % 3)},
			})
			if err != nil {
				t.Fatalf("batch %s: %v", name, err)
			}
			derived = append(derived, ids...)
		case 3:
			if len(videos) == 0 {
				continue
			}
			a := videos[int(op.r1)%len(videos)]
			b := videos[int(op.r2)%len(videos)]
			id, err := db.AddMultimedia(name, timebase.Millis, []core.ComponentRef{
				{Object: a, Start: op.r3 % 2000},
				{Object: b, Start: 500},
			}, nil)
			if err != nil {
				t.Fatalf("multimedia %s: %v", name, err)
			}
			multis = append(multis, id)
		case 4:
			if len(multis) == 0 {
				continue
			}
			m := multis[int(op.r1)%len(multis)]
			err := db.AddSync(m, 0, 1, 5+op.r2%20)
			if err != nil && !errors.Is(err, catalog.ErrNotFound) {
				t.Fatalf("sync: %v", err)
			}
		case 5:
			pool := derived
			if op.r3%2 == 0 && len(multis) > 0 {
				pool = multis
			}
			if len(pool) == 0 {
				continue
			}
			err := db.Delete(pool[int(op.r1)%len(pool)])
			if err != nil && !errors.Is(err, catalog.ErrInUse) && !errors.Is(err, catalog.ErrNotFound) {
				t.Fatalf("delete: %v", err)
			}
		}
	}
}

// copyDir copies every regular file of a catalog directory into a
// fresh one, so a replay opens its own journal handles instead of
// sharing segment files with the live catalog.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

type probeResp struct {
	status int
	digest string
	body   string
}

func fetch(t *testing.T, url string) probeResp {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return probeResp{resp.StatusCode,
		workload.BodyDigest(resp.Header.Get("Content-Type"), body), string(body)}
}

// withParam appends one key=value to a path that may or may not carry
// a query string already.
func withParam(path, kv string) string {
	if strings.Contains(path, "?") {
		return path + "&" + kv
	}
	return path + "?" + kv
}

// queryShapes draws the probe set for one sequence: planner filters,
// pagination, a count, and a point read of a scripted name (which may
// well 404 on both sides — also an equivalence).
func queryShapes(prng *rand.Rand, nOps int) []string {
	shapes := []string{
		"/v1/query?kind=video&limit=50",
		"/v1/query?class=derived&sort=name&limit=50",
		fmt.Sprintf("/v1/query?live_at=%.3f&limit=50", prng.Float64()*3),
		fmt.Sprintf("/v1/query?kind=video&sort=name&limit=2&offset=%d", prng.Intn(3)),
		"/v1/query?count=1",
	}
	name := fmt.Sprintf("h-%03d", 1+prng.Intn(nOps))
	if prng.Intn(2) == 0 {
		name += "a" // a batch item name
	}
	return append(shapes, "/v1/objects/"+name)
}

// bitemporalDiff builds the scripted history in a journaled catalog,
// then for a deterministic set of probe sequences compares every live
// as_of=S read against a fresh catalog replayed to S (replay cap).
// Returns "" when fully equivalent, else a description of the first
// divergence. Probes include the boundaries: sequence 1, the newest
// sequence, and a sequence past the end ("as of the future" must read
// as the latest state).
func bitemporalDiff(t *testing.T, seed int64, script []histOp) string {
	t.Helper()
	dir := t.TempDir()
	store := blob.NewMemStore()
	db, err := catalog.Open(dir, store)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseJournal()
	applyScript(t, db, "h", script)
	maxSeq := db.Seq()
	live := httptest.NewServer(New(db))
	defer live.Close()
	liveEpoch := db.CurrentView().Epoch()

	prng := rand.New(rand.NewSource(seed ^ 0x5eed))
	probes := []uint64{1, maxSeq, maxSeq + 7}
	for i := 0; i < 4 && maxSeq > 1; i++ {
		probes = append(probes, 1+uint64(prng.Int63())%maxSeq)
	}
	for _, S := range probes {
		rdb, err := catalog.Open(copyDir(t, dir), store, catalog.WithReplayCap(S))
		if err != nil {
			return fmt.Sprintf("replay to seq %d: %v", S, err)
		}
		// The replayed catalog rebuilt its own version chains from the
		// journal — they must verify just like the live ones.
		if err := rdb.CurrentView().VerifyVersions(); err != nil {
			rdb.CloseJournal()
			return fmt.Sprintf("replay to seq %d: %v", S, err)
		}
		replay := httptest.NewServer(New(rdb))
		asOf := fmt.Sprintf("as_of=%d", S)
		for si, shape := range queryShapes(prng, len(script)) {
			lr := fetch(t, live.URL+withParam(shape, asOf))
			rr := fetch(t, replay.URL+shape)
			if lr.status != rr.status || lr.digest != rr.digest {
				replay.Close()
				rdb.CloseJournal()
				return fmt.Sprintf("seq %d, %s: live as_of %d %q vs replay %d %q",
					S, shape, lr.status, lr.body, rr.status, rr.body)
			}
			if si == 0 {
				// epoch= composes with as_of=: pinning the epoch the
				// request would resolve to anyway must change nothing.
				pinned := fetch(t, live.URL+withParam(withParam(shape, asOf),
					fmt.Sprintf("epoch=%d", liveEpoch)))
				if pinned.status != lr.status || pinned.digest != lr.digest {
					replay.Close()
					rdb.CloseJournal()
					return fmt.Sprintf("seq %d, %s: epoch pin changed the as_of read: %d %q vs %d %q",
						S, shape, pinned.status, pinned.body, lr.status, lr.body)
				}
			}
		}
		replay.Close()
		rdb.CloseJournal()
	}
	return ""
}

// shrinkScript greedily minimizes a failing history, dropping one op
// at a time while the divergence persists.
func shrinkScript(t *testing.T, seed int64, script []histOp) []histOp {
	t.Helper()
	for changed := true; changed; {
		changed = false
		for i := range script {
			trial := append(append([]histOp{}, script[:i]...), script[i+1:]...)
			if len(trial) == 0 {
				continue
			}
			if bitemporalDiff(t, seed, trial) != "" {
				script, changed = trial, true
				break
			}
		}
	}
	return script
}

// TestBitemporalOracle is the battery: 100 seeded random histories,
// each probed at boundary and random sequences across filter,
// pagination, count, point-read and epoch-pinned shapes.
func TestBitemporalOracle(t *testing.T) {
	histories := 100
	if testing.Short() {
		histories = 10
	}
	for h := 0; h < histories; h++ {
		seed := int64(4000 + h)
		rng := rand.New(rand.NewSource(seed))
		script := genScript(rng, 8+rng.Intn(5))
		if d := bitemporalDiff(t, seed, script); d != "" {
			min := shrinkScript(t, seed, script)
			t.Fatalf("bitemporal divergence (seed %d)\n  %s\n  minimal script (%d ops): %+v\n  minimal divergence: %s",
				seed, d, len(min), min, bitemporalDiff(t, seed, min))
		}
	}
}

// TestBitemporalOracleAcrossCheckpoint runs the oracle across the
// persistence boundary: history → full Save → more history →
// incremental Checkpoint → Load a copy. The loaded catalog's version
// chains came entirely out of snapshot version frames (the checkpoint
// compacted the journal), so every as_of answer it gives must be
// byte-equal to the live catalog's.
func TestBitemporalOracleAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store := blob.NewMemStore()
	db, err := catalog.Open(dir, store)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseJournal()
	rng := rand.New(rand.NewSource(7))
	script := genScript(rng, 12)
	applyScript(t, db, "a", script[:6])
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	applyScript(t, db, "b", script[6:])
	if err := db.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	maxSeq := db.Seq()

	ldb, err := catalog.Load(copyDir(t, dir), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldb.CurrentView().VerifyVersions(); err != nil {
		t.Fatalf("loaded chains do not verify: %v", err)
	}
	if err := ldb.CurrentView().VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(New(db))
	defer live.Close()
	loaded := httptest.NewServer(New(ldb))
	defer loaded.Close()
	for S := uint64(1); S <= maxSeq; S++ {
		for _, shape := range []string{
			"/v1/query?kind=video&limit=50",
			"/v1/query?class=multimedia&limit=50",
			"/v1/objects/a-001",
		} {
			p := withParam(shape, fmt.Sprintf("as_of=%d", S))
			lr, rr := fetch(t, live.URL+p), fetch(t, loaded.URL+p)
			if lr.status != rr.status || lr.digest != rr.digest {
				t.Fatalf("seq %d, %s: live %d %q vs loaded %d %q",
					S, shape, lr.status, lr.body, rr.status, rr.body)
			}
		}
	}
}

// TestBitemporalRetentionGone pins the deterministic failure mode: a
// catalog retaining only the committed state (retention 1) evicts a
// chain's history on its first re-edit, and every as_of below the
// floor answers 410 with the stable version_gone code — the same
// answer every time it is asked. Gone probes are counted, not failed:
// they are the policy working.
func TestBitemporalRetentionGone(t *testing.T) {
	dir := t.TempDir()
	store := blob.NewMemStore()
	db, err := catalog.Open(dir, store, catalog.WithVersionRetention(1))
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseJournal()
	rng := rand.New(rand.NewSource(99))
	applyScript(t, db, "h", genScript(rng, 14))
	// Deterministic churn: a cut created and deleted gives its chain a
	// second entry, which retention 1 prunes immediately.
	src, err := db.Lookup("h-001") // the first scripted op is always an ingest
	if err != nil {
		t.Fatal(err)
	}
	cut, err := db.SelectDuration(src.ID, "churn", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(cut); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ingest("after-churn", fixtures.Video(4, 16, 12, 42), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	floor := db.CurrentView().VersionFloor()
	if floor == 0 {
		t.Fatalf("retention 1 never raised the version floor across %d sequences", db.Seq())
	}
	ts := httptest.NewServer(New(db))
	defer ts.Close()

	gone := 0
	for S := uint64(1); S <= db.Seq(); S++ {
		r := fetch(t, ts.URL+fmt.Sprintf("/v1/query?kind=video&as_of=%d&limit=50", S))
		if S < floor {
			gone++
			if r.status != http.StatusGone {
				t.Fatalf("as_of=%d below floor %d: status %d, want 410: %s", S, floor, r.status, r.body)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal([]byte(r.body), &env); err != nil || env.Error.Code != "version_gone" {
				t.Fatalf("as_of=%d below floor: code %q, want version_gone: %s", S, env.Error.Code, r.body)
			}
			// Deterministic: the same probe answers the same way again.
			if again := fetch(t, ts.URL+fmt.Sprintf("/v1/query?kind=video&as_of=%d&limit=50", S)); again.digest != r.digest || again.status != r.status {
				t.Fatalf("as_of=%d not deterministic: %q then %q", S, r.body, again.body)
			}
		} else if r.status != http.StatusOK {
			t.Fatalf("as_of=%d at/above floor %d: status %d: %s", S, floor, r.status, r.body)
		}
	}
	if gone == 0 {
		t.Fatal("no probe landed below the floor — the eviction case went untested")
	}
}

// TestQueryRejectsUnknownParams locks in the strict parameter
// whitelist: a typo'd parameter (as_off=) must answer 400 bad_request
// rather than silently matching everything.
func TestQueryRejectsUnknownParams(t *testing.T) {
	db := oracleDB(t, 0)
	ts := httptest.NewServer(New(db))
	defer ts.Close()

	for _, bad := range []string{
		"/v1/query?as_off=5",
		"/v1/query?kind=video&limitt=3",
		"/v1/query?attrlane=x", // attr filters need the attr. prefix
	} {
		r := fetch(t, ts.URL+bad)
		if r.status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, r.status)
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal([]byte(r.body), &env); err != nil {
			t.Errorf("%s: not an error envelope: %s", bad, r.body)
			continue
		}
		if env.Error.Code != "bad_request" || !strings.Contains(env.Error.Message, "unknown query parameter") {
			t.Errorf("%s: envelope %+v, want bad_request naming the parameter", bad, env.Error)
		}
	}
	// Every documented parameter still passes.
	ok := fetch(t, ts.URL+"/v1/query?kind=video&class=nonderived&name_contains=a&live_at=0.1"+
		"&min_duration=0&max_duration=100&sort=name&limit=5&offset=0&attr.lane=x&as_of=1")
	if ok.status != http.StatusOK {
		t.Errorf("whitelisted parameters rejected: %d %s", ok.status, ok.body)
	}
}

package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out json.RawMessage
	dec := json.NewDecoder(resp.Body)
	dec.Decode(&out)
	return resp, out
}

func TestBatchEndpoint(t *testing.T) {
	ts, db := testServer(t)
	body := `{"items": [
		{"name":"act1","op":"video-edit","input_names":["clip"],
		 "params":{"entries":[{"input":0,"from":0,"to":6}]}},
		{"name":"teaser","op":"video-edit","input_names":["act1"],
		 "params":{"entries":[{"input":0,"from":0,"to":2}]}}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/objects:batch", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d (%s)", resp.StatusCode, raw)
	}
	var reply batchReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.IDs) != 2 || len(reply.Objects) != 2 {
		t.Fatalf("reply = %s", raw)
	}
	if reply.Objects[1].Name != "teaser" {
		t.Errorf("objects[1] = %+v", reply.Objects[1])
	}
	obj, err := db.Lookup("teaser")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Expand(obj.ID)
	if err != nil || len(v.Video) != 2 {
		t.Fatalf("expand teaser: %v", err)
	}
}

func TestBatchEndpointAtomicFailure(t *testing.T) {
	ts, db := testServer(t)
	before := db.Len()
	body := `{"items": [
		{"name":"ok","op":"video-edit","input_names":["clip"],
		 "params":{"entries":[{"input":0,"from":0,"to":4}]}},
		{"name":"broken","op":"video-edit","input_names":["missing"],
		 "params":{"entries":[{"input":0,"from":0,"to":1}]}}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/objects:batch", body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d (%s)", resp.StatusCode, raw)
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeNotFound || !strings.Contains(env.Error.Message, "broken") {
		t.Errorf("envelope = %+v", env.Error)
	}
	if db.Len() != before {
		t.Errorf("len = %d, want %d (batch leaked)", db.Len(), before)
	}
}

func TestBatchEndpointRejectsJunk(t *testing.T) {
	ts, _ := testServer(t)
	for _, body := range []string{
		``, `{}`, `{"items":[]}`, `{"items":[{"nmae":"typo"}]}`, `not json`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/objects:batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d (%s)", body, resp.StatusCode, raw)
		}
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/faultfs"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/telemetry"
)

// TestMetricsContentNegotiation covers both /metrics formats: the
// default Prometheus text exposition and the JSON shape under
// Accept: application/json.
func TestMetricsContentNegotiation(t *testing.T) {
	ts, _ := testServer(t)
	// Generate one request so the route histograms have samples.
	get(t, ts.URL+"/v1/objects", 200)

	t.Run("prometheus-default", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("Content-Type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		out := string(body)
		// Every endpoint and every stage has a series, observed or not.
		for _, route := range []string{"list", "object", "element", "at", "stream", "expand", "timeline", "lineage", "cut", "trace", "metrics", "healthz"} {
			want := fmt.Sprintf(`tbm_http_request_duration_seconds_count{route=%q}`, route)
			if !strings.Contains(out, want) {
				t.Errorf("missing %s", want)
			}
		}
		for _, stage := range []string{"lookup", "expand", "decode", "payload", "journal_append", "expcache_fill", "wal_fsync", "blob_read"} {
			want := fmt.Sprintf(`tbm_stage_duration_seconds_count{stage=%q}`, stage)
			if !strings.Contains(out, want) {
				t.Errorf("missing %s", want)
			}
		}
		for _, want := range []string{
			"# TYPE tbm_http_request_duration_seconds histogram",
			"tbm_legacy_requests_total",
			"tbm_expcache_hits_total",
			"tbm_journal_appends_total",
			"tbm_recovery_journal_records_replayed",
			"tbm_http_load_shed_total",
			"tbm_objects 3",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q", want)
			}
		}
		// Basic format sanity: every non-comment line is "name value".
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if fields := strings.Fields(line); len(fields) != 2 {
				t.Errorf("malformed line %q", line)
			}
		}
	})

	t.Run("json-on-accept", func(t *testing.T) {
		var m struct {
			Objects        int    `json:"objects"`
			LegacyRequests *int64 `json:"legacy_requests"`
			Lifecycle      struct {
				StreamsTruncated *int64 `json:"streams_truncated"`
			} `json:"lifecycle"`
		}
		if err := json.Unmarshal(metricsJSON(t, ts.URL), &m); err != nil {
			t.Fatal(err)
		}
		if m.Objects != 3 {
			t.Errorf("objects = %d", m.Objects)
		}
		if m.LegacyRequests == nil || m.Lifecycle.StreamsTruncated == nil {
			t.Error("new counters missing from JSON shape")
		}
	})
}

// TestRequestIDHeader asserts every response carries X-Request-ID —
// success, error, and even unrouted paths — and that IDs differ.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := testServer(t)
	seen := map[string]bool{}
	for _, path := range []string{"/v1/objects", "/v1/objects/ghost", "/nope", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rid := resp.Header.Get("X-Request-ID")
		if rid == "" {
			t.Errorf("GET %s: no X-Request-ID", path)
		}
		if seen[rid] {
			t.Errorf("GET %s: duplicate request ID %q", path, rid)
		}
		seen[rid] = true
	}
}

// TestErrorEnvelope drives each sentinel error through its HTTP route
// and checks the envelope code and status.
func TestErrorEnvelope(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		path   string
		method string
		status int
		code   string
	}{
		{"/v1/objects/ghost", "GET", 404, "not_found"},             // catalog.ErrNotFound
		{"/v1/objects/clip/element/99", "GET", 404, "no_element"},  // interp.ErrNoElement
		{"/v1/objects/clip/at/999999", "GET", 404, "no_element"},   // no element at tick
		{"/v1/objects/show/expand", "GET", 400, "cannot_expand"},   // catalog.ErrCannotExpand
		{"/v1/objects/show/element/0", "GET", 400, "not_media"},    // catalog.ErrNotMedia
		{"/v1/objects/clip/timeline", "GET", 400, "not_composite"}, // catalog.ErrNotComposite
		{"/v1/objects/clip/element/x", "GET", 400, "bad_request"},  // unparsable index
		{"/v1/objects/clip/cut?out=&from=0&to=1", "POST", 400, "bad_request"},
		{"/v1/objects/clip/cut?out=song&from=0&to=1", "POST", 409, "duplicate_name"}, // catalog.ErrDupName
		{"/v1/objects?limit=-1", "GET", 400, "bad_request"},
		{"/v1/objects?offset=x", "GET", 400, "bad_request"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s %s = %d (%s), want %d", c.method, c.path, resp.StatusCode, body, c.status)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s %s: not an envelope: %s", c.method, c.path, body)
			continue
		}
		if env.Error.Code != c.code {
			t.Errorf("%s %s code = %q, want %q", c.method, c.path, env.Error.Code, c.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty message", c.method, c.path)
		}
	}
}

// TestListPagination covers the paginated /v1 list shape and its
// bounds: normal pages, offset past the end, limit 0, and the
// repeated-attr filter fix.
func TestListPagination(t *testing.T) {
	ts, _ := testServer(t) // clip, song, show (IDs ascending)

	page := func(t *testing.T, query string) (objs []map[string]any, total int, next *int) {
		t.Helper()
		var reply struct {
			Objects    []map[string]any `json:"objects"`
			Total      int              `json:"total"`
			NextOffset *int             `json:"next_offset"`
		}
		if err := json.Unmarshal(get(t, ts.URL+"/v1/objects"+query, 200), &reply); err != nil {
			t.Fatal(err)
		}
		return reply.Objects, reply.Total, reply.NextOffset
	}

	// Unpaginated /v1: everything, no next_offset.
	objs, total, next := page(t, "")
	if len(objs) != 3 || total != 3 || next != nil {
		t.Errorf("full list: len=%d total=%d next=%v", len(objs), total, next)
	}

	// First page of 2: next_offset points at the remainder.
	objs, total, next = page(t, "?limit=2")
	if len(objs) != 2 || total != 3 || next == nil || *next != 2 {
		t.Errorf("limit=2: len=%d total=%d next=%v", len(objs), total, next)
	}
	if objs[0]["name"] != "clip" || objs[1]["name"] != "song" {
		t.Errorf("page order: %v, %v", objs[0]["name"], objs[1]["name"])
	}

	// Second page: the tail, no next_offset.
	objs, _, next = page(t, "?limit=2&offset=2")
	if len(objs) != 1 || objs[0]["name"] != "show" || next != nil {
		t.Errorf("second page: len=%d next=%v", len(objs), next)
	}

	// Offset past the end: empty page, total intact.
	objs, total, next = page(t, "?offset=99")
	if len(objs) != 0 || total != 3 || next != nil {
		t.Errorf("offset past end: len=%d total=%d next=%v", len(objs), total, next)
	}

	// limit=0: an empty page that still reports the total.
	objs, total, next = page(t, "?limit=0")
	if len(objs) != 0 || total != 3 || next == nil || *next != 0 {
		t.Errorf("limit=0: len=%d total=%d next=%v", len(objs), total, next)
	}

	// Repeated attr values: attr.language=en OR fr must match clip
	// (language=en), not just the first value.
	objs, _, _ = page(t, "?attr.language=fr&attr.language=en")
	if len(objs) != 1 || objs[0]["name"] != "clip" {
		t.Errorf("repeated attr filter: %v", objs)
	}
}

// TestLegacyRouteRewrite asserts unversioned paths still work, keep
// the bare-array list shape, and are counted.
func TestLegacyRouteRewrite(t *testing.T) {
	ts, db := testServer(t)

	var objs []map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects", 200), &objs); err != nil {
		t.Fatalf("legacy list is not a bare array: %v", err)
	}
	if len(objs) != 3 {
		t.Errorf("legacy list len = %d", len(objs))
	}
	var detail map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects/clip", 200), &detail); err != nil {
		t.Fatal(err)
	}
	if detail["name"] != "clip" {
		t.Errorf("legacy detail = %v", detail["name"])
	}

	if got := db.Telemetry().Counter(telemetry.LegacyCounter, "").Load(); got != 2 {
		t.Errorf("legacy_requests = %d, want 2", got)
	}
	var m struct {
		LegacyRequests int64 `json:"legacy_requests"`
	}
	if err := json.Unmarshal(metricsJSON(t, ts.URL), &m); err != nil {
		t.Fatal(err)
	}
	if m.LegacyRequests != 2 {
		t.Errorf("metrics legacy_requests = %d, want 2", m.LegacyRequests)
	}
}

// TestDebugTrace checks that request traces land in the ring with
// route, status and spans.
func TestDebugTrace(t *testing.T) {
	ts, _ := testServer(t)
	get(t, ts.URL+"/v1/objects/clip/expand", 200)

	var reply struct {
		Traces []struct {
			RequestID string `json:"request_id"`
			Route     string `json:"route"`
			Status    int    `json:"status"`
			Spans     []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/debug/trace", 200), &reply); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tr := range reply.Traces {
		if tr.Route != "expand" {
			continue
		}
		found = true
		if tr.RequestID == "" || tr.Status != 200 {
			t.Errorf("trace = %+v", tr)
		}
		spans := map[string]bool{}
		for _, sp := range tr.Spans {
			spans[sp.Name] = true
		}
		// First expansion of clip: lookup, expand and the decode
		// inside the cache miss.
		for _, want := range []string{"lookup", "expand", "decode"} {
			if !spans[want] {
				t.Errorf("expand trace missing span %q (have %v)", want, spans)
			}
		}
	}
	if !found {
		t.Fatal("no trace recorded for the expand request")
	}
}

// TestStreamTruncationTrailer injects a payload fault mid-stream and
// asserts the truncation is visible: X-Stream-Error trailer set,
// lifecycle counter bumped. A clean stream carries no trailer value.
func TestStreamTruncationTrailer(t *testing.T) {
	inj := faultfs.NewInjector()
	db := catalog.New(faultfs.Wrap(blob.NewMemStore(), inj))
	if _, err := db.Ingest("clip", fixtures.Video(6, 32, 24, 1), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Clean stream first: no trailer.
	resp, err := http.Get(ts.URL + "/v1/objects/clip/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if v := resp.Trailer.Get("X-Stream-Error"); v != "" {
		t.Fatalf("clean stream has trailer %q", v)
	}

	// Fail the 3rd element read of the next stream (element reads
	// before this point — ingest, the clean stream — are skipped via
	// the live count).
	inj.Add(faultfs.Rule{Op: "readspan", Nth: inj.Count("readspan") + 3})
	resp, err = http.Get(ts.URL + "/v1/objects/clip/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	trailer := resp.Trailer.Get("X-Stream-Error")
	if trailer == "" {
		t.Fatal("truncated stream carries no X-Stream-Error trailer")
	}
	if !strings.Contains(trailer, "injected fault") {
		t.Errorf("trailer = %q", trailer)
	}
	if len(body) == 0 {
		t.Error("expected a partial body before the truncation")
	}
	if got := srv.stats.snapshot().StreamsTruncated; got != 1 {
		t.Errorf("streams_truncated = %d, want 1", got)
	}
}

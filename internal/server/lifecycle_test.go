package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/media"
)

// TestRecoverMiddleware: a handler panic becomes a 500 and a counter
// increment; the process stays up.
func TestRecoverMiddleware(t *testing.T) {
	var stats lifecycleStats
	h := recoverMiddleware(&stats, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("code = %d", rec.Code)
	}
	if stats.snapshot().PanicsRecovered != 1 {
		t.Errorf("panics = %d", stats.snapshot().PanicsRecovered)
	}
	// And an un-panicked request passes through untouched.
	rec2 := httptest.NewRecorder()
	recoverMiddleware(&stats, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})).ServeHTTP(rec2, httptest.NewRequest("GET", "/x", nil))
	if rec2.Code != http.StatusTeapot {
		t.Errorf("passthrough code = %d", rec2.Code)
	}
}

// TestFaultLimiterSheds: at capacity the limiter answers 503 with a
// Retry-After hint instead of queueing.
func TestFaultLimiterSheds(t *testing.T) {
	var stats lifecycleStats
	release := make(chan struct{})
	entered := make(chan struct{})
	slots := make(chan struct{}, 1)
	h := limitMiddleware(&stats, slots, 7*time.Second, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		entered <- struct{}{}
		<-release
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	}()
	<-entered // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/shed", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("code = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q", got)
	}
	if stats.snapshot().LoadShed != 1 {
		t.Errorf("shed = %d", stats.snapshot().LoadShed)
	}
	close(release)
	wg.Wait()
	if got := stats.snapshot().InFlight; got != 0 {
		t.Errorf("in-flight after drain = %d", got)
	}

	// A nil slots channel disables the limiter entirely.
	if got := limitMiddleware(&stats, nil, time.Second, http.NotFoundHandler()); got == nil {
		t.Fatal("nil limiter")
	}
}

// TestTimeoutMiddleware: handlers observe the configured deadline via
// the request context; d <= 0 leaves the context alone.
func TestTimeoutMiddleware(t *testing.T) {
	var sawDeadline bool
	h := timeoutMiddleware(time.Minute, http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !sawDeadline {
		t.Error("no deadline on request context")
	}

	h0 := timeoutMiddleware(0, http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	h0.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if sawDeadline {
		t.Error("deadline attached despite d=0")
	}
}

// TestFaultShedVisibleInMetrics drives the full server at max-inflight
// 1 and checks the shed shows up in /metrics.
func TestFaultShedVisibleInMetrics(t *testing.T) {
	db := fixtures.NewMemDB()
	// Raw RGB and lots of frames: the stream body (~60MB) far exceeds
	// any auto-tuned socket buffering, so an unread response blocks
	// the handler and holds the only slot.
	if _, err := db.Ingest("clip", fixtures.Video(100, 512, 384, 1),
		catalog.IngestOptions{VideoEncoding: media.EncodingRawRGB}); err != nil {
		t.Fatal(err)
	}
	srv := New(db, WithMaxInFlight(1), WithRequestTimeout(time.Minute))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hold the only slot with a streaming request that we leave
	// half-read. Use a raw client so the body stays open.
	release := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL + "/objects/clip/stream")
		if err == nil {
			<-release
			resp.Body.Close()
		}
	}()

	// Wait until the slot is actually held, then expect a shed.
	deadline := time.Now().Add(5 * time.Second)
	var shedCode int
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			shedCode = resp.StatusCode
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	if shedCode != http.StatusServiceUnavailable {
		t.Fatal("never observed load shedding")
	}
	if got := srv.stats.snapshot().LoadShed; got < 1 {
		t.Errorf("load_shed = %d", got)
	}
}

// TestCrashCutSurvivesRestart is the acceptance scenario end to end
// over HTTP: POST /cut, then "kill -9" (abandon everything without
// Save), restart, and the derivation is there.
func TestCrashCutSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fs, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := catalog.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ingest("clip", fixtures.Video(10, 32, 24, 9), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))

	resp, err := http.Post(ts.URL+"/objects/clip/cut?out=webcut&from=2&to=6", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cut status = %d", resp.StatusCode)
	}
	ts.Close()
	// Crash: no Save, no CloseJournal. The journal append that backed
	// the 201 response was fsynced before it was sent.

	fs2, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := catalog.Open(dir, fs2)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db2.Lookup("webcut")
	if err != nil {
		t.Fatalf("webcut after restart: %v", err)
	}
	if uint64(obj.ID) != created.ID {
		t.Errorf("id = %d, want %d", obj.ID, created.ID)
	}
	v, err := db2.Expand(obj.ID)
	if err != nil || len(v.Video) != 4 {
		t.Fatalf("expand after restart: %v (frames=%d)", err, len(v.Video))
	}

	// The restarted server reports the recovery in /metrics.
	ts2 := httptest.NewServer(New(db2))
	defer ts2.Close()
	var m struct {
		Recovery struct {
			JournalRecords int `json:"journal_records_replayed"`
		} `json:"recovery"`
	}
	mreq, err := http.NewRequest("GET", ts2.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	mreq.Header.Set("Accept", "application/json")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.Recovery.JournalRecords < 1 {
		t.Errorf("journal_records_replayed = %d", m.Recovery.JournalRecords)
	}
}

// TestStreamStopsOnDeadline: a stream whose deadline expires truncates
// instead of running to completion.
func TestStreamStopsOnDeadline(t *testing.T) {
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(50, 32, 24, 2), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	// 1ns deadline: expired before the handler runs.
	ts := httptest.NewServer(New(db, WithRequestTimeout(time.Nanosecond)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/objects/clip/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	tsFull := httptest.NewServer(New(db))
	defer tsFull.Close()
	full := get(t, tsFull.URL+"/objects/clip/stream", 200)
	if len(body) >= len(full) {
		t.Errorf("deadline-limited stream = %d bytes, full = %d", len(body), len(full))
	}
}

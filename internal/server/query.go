package server

import (
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"strings"

	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/media"
	"timedmedia/internal/query"
)

// GET /v1/query — the indexed read path over the whole catalog.
//
// Filters (all AND; each is answered by the matching catalog index):
//
//	kind=video                      media kind (kind index)
//	class=nonderived|derived|multimedia
//	attr.K=V                        attribute equality; repeating the
//	                                same key ORs its values
//	derived_from=NAME               transitive provenance (adjacency index)
//	live_at=SEC                     timeline covers the instant (interval index)
//	overlaps=T1,T2                  timeline overlaps [T1,T2] seconds
//	min_duration=SEC&max_duration=SEC  descriptor duration range
//	name_contains=SUB               substring of the object name
//
// Shaping: sort=id|name|duration (default id), limit=N, offset=N,
// count=1 returns {"count":N} without materializing objects. Results
// use the same paginated envelope as /v1/objects.

// parseKindName maps the wire name of a media kind back to the kind.
// "unknown" is a real kind (derived/multimedia objects carry it);
// anything else unrecognized reports ok=false.
func parseKindName(s string) (media.Kind, bool) {
	for _, k := range []media.Kind{
		media.KindUnknown, media.KindImage, media.KindAudio,
		media.KindVideo, media.KindMusic, media.KindAnimation,
	} {
		if k.String() == s {
			return k, true
		}
	}
	return media.KindUnknown, false
}

// parseClassName maps the wire name of an object class.
func parseClassName(s string) (core.Class, bool) {
	switch s {
	case "nonderived", "non-derived", "media":
		return core.ClassNonDerived, true
	case "derived":
		return core.ClassDerived, true
	case "multimedia":
		return core.ClassMultimedia, true
	}
	return 0, false
}

// attrFilters splits the attr.* query parameters into indexable
// single-value equalities and an OR-residual for keys given several
// values. The second return is the residual predicate (nil when every
// key was single-valued).
func attrFilters(q url.Values) ([]catalog.AttrEq, func(*core.Object) bool) {
	var eqs []catalog.AttrEq
	multi := map[string][]string{}
	for key, vals := range q {
		if !strings.HasPrefix(key, "attr.") {
			continue
		}
		name := strings.TrimPrefix(key, "attr.")
		if len(vals) == 1 {
			eqs = append(eqs, catalog.AttrEq{Key: name, Value: vals[0]})
			continue
		}
		multi[name] = vals
	}
	if len(multi) == 0 {
		return eqs, nil
	}
	return eqs, func(o *core.Object) bool {
		for name, vals := range multi {
			if !slices.Contains(vals, o.Attrs[name]) {
				return false
			}
		}
		return true
	}
}

// queryParams is every parameter /v1/query accepts (plus the attr.*
// namespace). Anything else is rejected with 400 bad_request: a typo
// like as_off= silently matching everything would corrupt downstream
// analysis far more than a hard error does.
var queryParams = map[string]bool{
	"kind": true, "class": true, "name_contains": true,
	"derived_from": true, "live_at": true, "overlaps": true,
	"min_duration": true, "max_duration": true, "sort": true,
	"limit": true, "offset": true, "count": true,
	"epoch": true, "as_of": true,
}

// checkQueryParams rejects unknown /v1/query parameters, reporting
// ok=false after writing the 400 reply.
func checkQueryParams(w http.ResponseWriter, params url.Values) bool {
	for key := range params {
		if queryParams[key] || strings.HasPrefix(key, "attr.") {
			continue
		}
		badRequest(w, "unknown query parameter "+strconv.Quote(key))
		return false
	}
	return true
}

// parsePage reads limit/offset, reporting ok=false after writing the
// error reply.
func parsePage(w http.ResponseWriter, q url.Values) (limit, offset int, ok bool) {
	limit, offset = -1, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			badRequest(w, "bad limit")
			return 0, 0, false
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			badRequest(w, "bad offset")
			return 0, 0, false
		}
		offset = n
	}
	return limit, offset, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	if !checkQueryParams(w, params) {
		return
	}
	// The whole query — planner, match, pagination, summaries — runs
	// against one pinned epoch view: no lock is taken and concurrent
	// commits cannot tear the result or skew total against the page.
	// With as_of= the view narrows further, to the transaction-time
	// snapshot at that journal sequence.
	pv, okPin := s.pinView(w, r)
	if !okPin {
		return
	}
	v, okAs := asOfView(w, r, pv)
	if !okAs {
		return
	}
	q := query.At(v)

	if v := params.Get("kind"); v != "" {
		k, ok := parseKindName(v)
		if !ok {
			badRequest(w, "bad kind "+strconv.Quote(v))
			return
		}
		q.Kind(k)
	}
	if v := params.Get("class"); v != "" {
		c, ok := parseClassName(v)
		if !ok {
			badRequest(w, "bad class "+strconv.Quote(v)+" (want nonderived|derived|multimedia)")
			return
		}
		q.Class(c)
	}
	eqs, residual := attrFilters(params)
	for _, eq := range eqs {
		q.Attr(eq.Key, eq.Value)
	}
	if residual != nil {
		q.Where(residual)
	}
	if v := params.Get("name_contains"); v != "" {
		q.NameContains(v)
	}
	if name := params.Get("derived_from"); name != "" {
		src, err := v.Lookup(name)
		if err != nil {
			httpError(w, err)
			return
		}
		q.DerivedFrom(src.ID)
	}
	if v := params.Get("live_at"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			badRequest(w, "bad live_at")
			return
		}
		q.LiveAt(t)
	}
	if v := params.Get("overlaps"); v != "" {
		lo, hi, ok := strings.Cut(v, ",")
		t1, err1 := strconv.ParseFloat(lo, 64)
		var t2 float64
		var err2 error
		if ok {
			t2, err2 = strconv.ParseFloat(hi, 64)
		}
		if !ok || err1 != nil || err2 != nil || t2 < t1 {
			badRequest(w, "bad overlaps (want T1,T2 with T1 <= T2)")
			return
		}
		q.Overlapping(t1, t2)
	}
	minD, maxD := params.Get("min_duration"), params.Get("max_duration")
	if minD != "" || maxD != "" {
		lo, hi := 0.0, 1e18
		var err error
		if minD != "" {
			if lo, err = strconv.ParseFloat(minD, 64); err != nil {
				badRequest(w, "bad min_duration")
				return
			}
		}
		if maxD != "" {
			if hi, err = strconv.ParseFloat(maxD, 64); err != nil {
				badRequest(w, "bad max_duration")
				return
			}
		}
		q.DurationBetween(lo, hi)
	}
	switch params.Get("sort") {
	case "", "id":
	case "name":
		q.SortByName()
	case "duration":
		q.SortByDuration()
	default:
		badRequest(w, "bad sort (want id|name|duration)")
		return
	}
	limit, offset, ok := parsePage(w, params)
	if !ok {
		return
	}
	q.Limit(limit)

	if c := params.Get("count"); c == "1" || c == "true" {
		writeJSON(w, map[string]any{"count": q.Count(), "epoch": v.Epoch()})
		return
	}
	page, total := q.RunPage(offset)
	writeListPage(w, s, v, page, offset, total)
}

package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/telemetry"
)

// POST /v1/objects:batch registers many objects in one atomic,
// group-committed call: the whole batch is validated and journaled as
// a single WAL batch (one fsync), and either every object is created
// or none is. Items may reference earlier items of the same batch by
// name, so a request can carry a derivation chain.
//
// Request:
//
//	{"items": [
//	  {"name":"cut1","op":"video-edit","input_names":["clip"],
//	   "params":{"entries":[{"input":0,"from":0,"to":100}]}},
//	  {"name":"teaser","op":"video-edit","input_names":["cut1"],
//	   "params":{"entries":[{"input":0,"from":0,"to":25}]}}
//	]}
//
// Non-derived items instead carry "blob" and "track" (the BLOB and its
// interpretation must already exist). Response: 201 with the created
// IDs and object summaries in item order; any failure is the usual
// error envelope naming the offending item, and nothing is created.

// maxBatchBody bounds the request body; params are small JSON records,
// so 8 MiB is far beyond any legitimate batch.
const maxBatchBody = 8 << 20

// maxBatchItems bounds batch fan-out so one request cannot hold the
// write path for an unbounded stretch.
const maxBatchItems = 4096

type batchItemJSON struct {
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`

	Blob  uint64 `json:"blob,omitempty"`
	Track string `json:"track,omitempty"`

	Op         string          `json:"op,omitempty"`
	Inputs     []uint64        `json:"inputs,omitempty"`
	InputNames []string        `json:"input_names,omitempty"`
	Params     json.RawMessage `json:"params,omitempty"`
}

type batchRequest struct {
	Items []batchItemJSON `json:"items"`
}

type batchReply struct {
	IDs     []uint64        `json:"ids"`
	Objects []objectSummary `json:"objects"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.writeAllowed(w) {
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		badRequest(w, "bad batch body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		badRequest(w, "empty batch")
		return
	}
	if len(req.Items) > maxBatchItems {
		badRequest(w, "batch too large")
		return
	}
	items := make([]catalog.BatchItem, len(req.Items))
	for i, it := range req.Items {
		inputs := make([]core.ID, len(it.Inputs))
		for k, id := range it.Inputs {
			inputs[k] = core.ID(id)
		}
		items[i] = catalog.BatchItem{
			Name:       it.Name,
			Attrs:      it.Attrs,
			Blob:       blob.ID(it.Blob),
			Track:      it.Track,
			Op:         it.Op,
			Inputs:     inputs,
			InputNames: it.InputNames,
			Params:     []byte(it.Params),
		}
	}
	// The span covers the whole batch commit; the single group-commit
	// fsync lands in the journal_append stage histogram.
	done := telemetry.StartSpan(r.Context(), "journal_append")
	ids, err := s.db.AddBatch(items)
	done()
	if err != nil {
		httpError(w, err)
		return
	}
	// One view: the batch landed as one epoch, so the epoch current
	// right after AddBatch returns contains every created object (or a
	// later epoch where some were already deleted again).
	cur := s.db.CurrentView()
	reply := batchReply{IDs: make([]uint64, len(ids)), Objects: make([]objectSummary, len(ids))}
	for i, id := range ids {
		reply.IDs[i] = uint64(id)
		obj, err := cur.Get(id)
		if err != nil {
			// Deleted between commit and summary — still created.
			if errors.Is(err, catalog.ErrNotFound) {
				reply.Objects[i] = objectSummary{ID: uint64(id), Name: items[i].Name}
				continue
			}
			httpError(w, err)
			return
		}
		reply.Objects[i] = s.summarize(cur, obj)
	}
	writeJSONStatus(w, http.StatusCreated, reply)
}

package server

import (
	"errors"
	"net/http"

	"timedmedia/internal/catalog"
	"timedmedia/internal/interp"
)

// API errors are returned as a JSON envelope with a stable machine
// code and a human message:
//
//	{"error":{"code":"not_found","message":"catalog: object not found: \"x\""}}
//
// The code strings are part of the API: clients switch on them, so
// they never change even when the message wording does. The HTTP
// status mapping is unchanged from the pre-envelope plain-text errors.

// Error codes.
const (
	CodeNotFound     = "not_found"
	CodeNoTrack      = "no_track"
	CodeNoElement    = "no_element"
	CodeNotMedia     = "not_media"
	CodeNotComposite = "not_composite"
	CodeCannotExpand = "cannot_expand"
	CodeNoInterp     = "no_interpretation"
	CodeDupName      = "duplicate_name"
	CodeJournal      = "journal_failed"
	CodeBadRequest   = "bad_request"
	CodeEpochGone    = "epoch_gone"
	CodeVersionGone  = "version_gone"
	CodeOverloaded   = "overloaded"
	CodeReadOnly     = "read_only"
	CodeNotReady     = "not_ready"
	CodeInternal     = "internal"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the JSON error shape of every API route.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// classify maps an error to its HTTP status and stable code.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, interp.ErrNoTrack):
		return http.StatusNotFound, CodeNoTrack
	case errors.Is(err, interp.ErrNoElement):
		return http.StatusNotFound, CodeNoElement
	case errors.Is(err, catalog.ErrNotComposite):
		return http.StatusBadRequest, CodeNotComposite
	case errors.Is(err, catalog.ErrNotMedia):
		return http.StatusBadRequest, CodeNotMedia
	case errors.Is(err, catalog.ErrCannotExpand):
		return http.StatusBadRequest, CodeCannotExpand
	case errors.Is(err, catalog.ErrNoInterp):
		return http.StatusBadRequest, CodeNoInterp
	case errors.Is(err, catalog.ErrEpochGone):
		// 410, not 404: the resource class still exists, the pinned
		// epoch has been retired. Clients drop the pin and re-read.
		return http.StatusGone, CodeEpochGone
	case errors.Is(err, catalog.ErrVersionGone):
		// Same shape for transaction time: the requested as_of sequence
		// fell below the version retention floor. Deterministic and
		// stable — replaying the same history yields the same 410.
		return http.StatusGone, CodeVersionGone
	case errors.Is(err, catalog.ErrDupName):
		return http.StatusConflict, CodeDupName
	case errors.Is(err, catalog.ErrJournal):
		return http.StatusInternalServerError, CodeJournal
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// httpError writes err as an error envelope with its mapped status.
func httpError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	writeError(w, status, code, err.Error())
}

// badRequest writes a 400 envelope with a literal message.
func badRequest(w http.ResponseWriter, msg string) {
	writeError(w, http.StatusBadRequest, CodeBadRequest, msg)
}

// writeError writes the envelope. It must not be used after the body
// has started (streams set a trailer instead).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSONStatus(w, status, errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

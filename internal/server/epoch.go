package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/interp"
	"timedmedia/internal/query"
	"timedmedia/internal/telemetry"
)

// readView is the read surface a request runs against: the pinned
// epoch view itself, or — when the request carries as_of= — a
// transaction-time snapshot reconstructed from that view's version
// chains. Both are immutable, so everything downstream (lookup,
// planner, summaries, pagination) is oblivious to which one it got.
type readView interface {
	query.Source
	Epoch() uint64
	Lookup(name string) (*core.Object, error)
	Interpretation(id blob.ID) (*interp.Interpretation, error)
}

// Epochs are a first-class API concept on every read route: a read
// resolves the catalog to one immutable epoch view up front and runs
// the whole request — lookup, planner, match, pagination — against
// it, so concurrent commits never tear a response.
//
// The resolved epoch is exposed two ways:
//
//   - ETag: every read response carries the epoch as a strong ETag
//     (`ETag: "17"`). If-None-Match with the current epoch's tag
//     answers 304 Not Modified without running the handler body — a
//     cheap "has anything changed?" poll.
//   - epoch= pin: a read may pass ?epoch=N to run against a retained
//     earlier epoch. Paginated clients pin the epoch of their first
//     page so later pages are mutually consistent with it instead of
//     racing writers page to page. A retired epoch answers
//     410 epoch_gone; clients drop the pin and restart from the
//     current epoch.

// pinView resolves the epoch view a read runs against: the epoch=
// parameter pins a retained epoch, otherwise the current epoch is
// used (one atomic load, no locks). It sets the ETag header and
// short-circuits If-None-Match with 304. ok=false means the response
// has already been written.
func (s *Server) pinView(w http.ResponseWriter, r *http.Request) (*catalog.View, bool) {
	var v *catalog.View
	if e := r.URL.Query().Get("epoch"); e != "" {
		n, err := strconv.ParseUint(e, 10, 64)
		if err != nil {
			badRequest(w, "bad epoch")
			return nil, false
		}
		pinned, err := s.db.ViewAt(n)
		if err != nil {
			httpError(w, err)
			return nil, false
		}
		v = pinned
	} else {
		v = s.db.CurrentView()
	}
	etag := `"` + strconv.FormatUint(v.Epoch(), 10) + `"`
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil, false
	}
	return v, true
}

// etagMatch reports whether an If-None-Match header value matches the
// entity tag. Weak comparison: a W/ prefix on a listed tag is
// ignored, and * matches anything.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// asOfView narrows a pinned epoch view to the transaction-time
// snapshot named by as_of= (a journal sequence number). Without the
// parameter the view passes through unchanged. A sequence below the
// retention floor answers 410 version_gone; a sequence ahead of the
// newest commit is simply the latest state — "as of the future" and
// "now" are the same snapshot. ok=false means the response has been
// written. Composes with epoch=: the chains are part of the pinned
// view, so as_of within a pinned epoch reads that epoch's history.
func asOfView(w http.ResponseWriter, r *http.Request, v *catalog.View) (readView, bool) {
	a := r.URL.Query().Get("as_of")
	if a == "" {
		return v, true
	}
	seq, err := strconv.ParseUint(a, 10, 64)
	if err != nil {
		badRequest(w, "bad as_of")
		return nil, false
	}
	av, err := v.AsOf(seq)
	if err != nil {
		httpError(w, err)
		return nil, false
	}
	return av, true
}

// lookupPinned resolves {name} against the pinned view, timing the
// lookup into the stage histogram and the request trace.
func (s *Server) lookupPinned(w http.ResponseWriter, r *http.Request, v readView) (*core.Object, bool) {
	done := telemetry.StartSpan(r.Context(), "lookup")
	start := time.Now()
	obj, err := v.Lookup(r.PathValue("name"))
	s.lookupHist.Observe(time.Since(start))
	done()
	if err != nil {
		httpError(w, err)
		return nil, false
	}
	return obj, true
}

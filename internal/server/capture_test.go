package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"timedmedia/internal/catalog"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/workload"
)

// TestCaptureRecordsRequests covers the happy path: reads and
// mutations land in the trace with route names, epochs (from the
// ETag), digests, and replayable POST bodies.
func TestCaptureRecordsRequests(t *testing.T) {
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(10, 32, 24, 1), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.trc")
	rec, err := workload.CreateTrace(path, workload.TraceMeta{Objects: db.Len()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, WithTraceRecorder(rec)))
	defer ts.Close()

	get(t, ts.URL+"/v1/objects/clip", 200)
	body := []byte(`{"items":[{"name":"b1","op":"video-edit","input_names":["clip"],"params":{"entries":[{"input":0,"from":1,"to":2}]}}]}`)
	resp, err := http.Post(ts.URL+"/v1/objects:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	get(t, ts.URL+"/v1/objects/missing", 404)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	meta, records, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Objects != 1 {
		t.Errorf("meta objects = %d, want 1", meta.Objects)
	}
	if len(records) != 3 {
		t.Fatalf("got %d records, want 3", len(records))
	}
	obj, batch, miss := records[0], records[1], records[2]
	if obj.RouteName != "object" || obj.Status != 200 || obj.Epoch == 0 || obj.Digest == "" {
		t.Errorf("object record = %+v", obj)
	}
	if batch.RouteName != "batch" || batch.Status != 201 || !bytes.Equal(batch.Body, body) {
		t.Errorf("batch record = %+v", batch)
	}
	if miss.Status != 404 || miss.ErrCode != "not_found" {
		t.Errorf("missing record = %+v", miss)
	}
	for i, r := range records {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d", i, r.Seq)
		}
		if r.LatencyNs <= 0 {
			t.Errorf("record %d has no latency", i)
		}
	}
}

// TestCaptureRecordsShedRequests is the middleware-ordering
// regression test: a request rejected by the load-shedding 503 path
// must still appear in the trace — it is part of the workload truth a
// policy sweep scores on — flagged Shed so replay skips it. If
// capture were ever moved inside the limiter, the shed request would
// vanish from the trace and this test fails.
func TestCaptureRecordsShedRequests(t *testing.T) {
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(10, 32, 24, 1), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.trc")
	rec, err := workload.CreateTrace(path, workload.TraceMeta{Objects: db.Len()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	srv := New(db,
		WithTraceRecorder(rec),
		WithMaxInFlight(1),
		WithRoute("GET /v1/slow", "slow", func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
			w.WriteHeader(http.StatusOK)
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// The single in-flight slot is held by /v1/slow: this request is
	// shed with 503 + Retry-After before any handler runs.
	resp, err := http.Get(ts.URL + "/v1/objects/clip")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected shed 503, got %d", resp.StatusCode)
	}
	close(release)
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	_, records, err := workload.ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	var shed, served int
	for _, r := range records {
		if r.Shed {
			shed++
			if r.Status != http.StatusServiceUnavailable {
				t.Errorf("shed record status = %d, want 503", r.Status)
			}
			if r.ErrCode != CodeOverloaded {
				t.Errorf("shed record code = %q, want %q", r.ErrCode, CodeOverloaded)
			}
			if r.Route() != "shed" {
				t.Errorf("shed record route = %q", r.Route())
			}
		} else {
			served++
		}
	}
	if shed != 1 {
		t.Fatalf("trace has %d shed records, want exactly 1 (capture must sit outside the limiter)", shed)
	}
	if served != 1 {
		t.Fatalf("trace has %d served records, want 1", served)
	}
}

// TestCaptureSurvivesRecorderFailure: a dead trace sink must never
// fail requests — recording stops, serving continues.
func TestCaptureSurvivesRecorderFailure(t *testing.T) {
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(10, 32, 24, 1), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "trace")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.NewRecorder(f, workload.TraceMeta{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // writes now fail with os.ErrClosed

	ts := httptest.NewServer(New(db, WithTraceRecorder(rec)))
	defer ts.Close()
	// Enough requests to overflow the recorder's 64 KiB buffer so the
	// failing flush is actually hit, then one more to prove serving
	// still works.
	for i := 0; i < 600; i++ {
		get(t, ts.URL+"/v1/objects/clip", 200)
	}
}

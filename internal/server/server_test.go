package server

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/fixtures"
	"timedmedia/internal/timebase"
)

func testServer(t *testing.T) (*httptest.Server, *catalog.DB) {
	t.Helper()
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(10, 32, 24, 1),
		catalog.IngestOptions{Attrs: map[string]string{"language": "en"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Ingest("song", fixtures.Tone(0.2, 440), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	clip, _ := db.Lookup("clip")
	song, _ := db.Lookup("song")
	if _, err := db.AddMultimedia("show", timebase.Millis, []core.ComponentRef{
		{Object: clip.ID, Start: 0}, {Object: song.ID, Start: 100},
	}, nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts, db
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d (%s), want %d", url, resp.StatusCode, body, wantCode)
	}
	return body
}

// metricsJSON fetches /metrics in its JSON shape (the default
// exposition is Prometheus text).
func metricsJSON(t *testing.T, baseURL string) []byte {
	t.Helper()
	req, err := http.NewRequest("GET", baseURL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d (%s)", resp.StatusCode, body)
	}
	return body
}

func TestListObjects(t *testing.T) {
	ts, _ := testServer(t)
	var objs []map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects", 200), &objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("objects = %d", len(objs))
	}
	// Kind filter.
	json.Unmarshal(get(t, ts.URL+"/objects?kind=audio", 200), &objs)
	if len(objs) != 1 || objs[0]["name"] != "song" {
		t.Errorf("audio filter = %v", objs)
	}
	// Attribute filter.
	json.Unmarshal(get(t, ts.URL+"/objects?attr.language=en", 200), &objs)
	if len(objs) != 1 || objs[0]["name"] != "clip" {
		t.Errorf("attr filter = %v", objs)
	}
}

func TestObjectDetail(t *testing.T) {
	ts, _ := testServer(t)
	var obj map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects/clip", 200), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["elements"].(float64) != 10 {
		t.Errorf("elements = %v", obj["elements"])
	}
	if !strings.Contains(obj["categories"].(string), "continuous") {
		t.Errorf("categories = %v", obj["categories"])
	}
	get(t, ts.URL+"/objects/ghost", 404)
}

func TestElementAndAt(t *testing.T) {
	ts, db := testServer(t)
	body := get(t, ts.URL+"/objects/clip/element/3", 200)
	// Must match the stored payload exactly.
	clip, _ := db.Lookup("clip")
	it, _ := db.Interpretation(clip.Blob)
	want, _ := it.Payload(clip.Track, 3)
	if string(body) != string(want) {
		t.Error("element payload mismatch")
	}
	get(t, ts.URL+"/objects/clip/element/999", 404)
	get(t, ts.URL+"/objects/clip/element/x", 400)

	// Time-addressed access: tick 3 covers element 3 (PAL frames).
	resp, err := http.Get(ts.URL + "/objects/clip/at/3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Element-Index") != "3" {
		t.Errorf("index header = %q", resp.Header.Get("X-Element-Index"))
	}
	get(t, ts.URL+"/objects/clip/at/99999", 404)
}

func TestStream(t *testing.T) {
	ts, db := testServer(t)
	body := get(t, ts.URL+"/objects/clip/stream?from=2&to=5", 200)
	clip, _ := db.Lookup("clip")
	it, _ := db.Interpretation(clip.Blob)
	off := 0
	for i := 2; i < 5; i++ {
		if off+8 > len(body) {
			t.Fatalf("truncated stream at element %d", i)
		}
		n := int(binary.BigEndian.Uint64(body[off:]))
		off += 8
		want, _ := it.Payload(clip.Track, i)
		if n != len(want) || string(body[off:off+n]) != string(want) {
			t.Fatalf("element %d mismatch", i)
		}
		off += n
	}
	if off != len(body) {
		t.Errorf("trailing bytes: %d", len(body)-off)
	}
	get(t, ts.URL+"/objects/clip/stream?from=5&to=2", 400)
	get(t, ts.URL+"/objects/clip/stream?from=0&to=99", 400)
}

func TestTimelineAndLineage(t *testing.T) {
	ts, _ := testServer(t)
	var spans []map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects/show/timeline", 200), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	get(t, ts.URL+"/objects/clip/timeline", 400) // not multimedia

	var nodes []map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects/show/lineage", 200), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 { // show + clip + song + 2 blobs
		t.Errorf("lineage = %d nodes", len(nodes))
	}
}

// derivedServer is testServer plus a derived cut of "clip".
func derivedServer(t *testing.T) (*httptest.Server, *catalog.DB) {
	t.Helper()
	ts, db := testServer(t)
	clip, _ := db.Lookup("clip")
	if _, err := db.SelectDuration(clip.ID, "cut", 2, 6); err != nil {
		t.Fatal(err)
	}
	return ts, db
}

// TestDerivedObjectErrorPaths: a derived object has no stored
// elements; element-oriented endpoints must 4xx, not panic.
func TestDerivedObjectErrorPaths(t *testing.T) {
	ts, _ := derivedServer(t)
	get(t, ts.URL+"/objects/cut/element/0", 400)
	get(t, ts.URL+"/objects/cut/at/0", 400)
	get(t, ts.URL+"/objects/cut/stream", 400)
	// Multimedia objects likewise.
	get(t, ts.URL+"/objects/show/element/0", 400)
	get(t, ts.URL+"/objects/show/at/0", 400)
	get(t, ts.URL+"/objects/show/stream", 400)
}

// TestEmptyListEncodesArray: no matches must encode as [], not null.
func TestEmptyListEncodesArray(t *testing.T) {
	db := catalog.New(blob.NewMemStore())
	ts := httptest.NewServer(New(db))
	defer ts.Close()
	if body := strings.TrimSpace(string(get(t, ts.URL+"/objects", 200))); body != "[]" {
		t.Errorf("empty list = %q, want []", body)
	}
	// A filter matching nothing on a populated catalog, too.
	ts2, _ := testServer(t)
	if body := strings.TrimSpace(string(get(t, ts2.URL+"/objects?kind=animation", 200))); body != "[]" {
		t.Errorf("filtered-empty list = %q, want []", body)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	var reply map[string]string
	if err := json.Unmarshal(get(t, ts.URL+"/healthz", 200), &reply); err != nil {
		t.Fatal(err)
	}
	if reply["status"] != "ok" {
		t.Errorf("healthz = %v", reply)
	}
}

func TestExpandEndpoint(t *testing.T) {
	ts, _ := derivedServer(t)
	var sum map[string]any
	if err := json.Unmarshal(get(t, ts.URL+"/objects/cut/expand", 200), &sum); err != nil {
		t.Fatal(err)
	}
	if sum["kind"] != "video" || sum["elements"].(float64) != 4 {
		t.Errorf("expand summary = %v", sum)
	}
	if sum["size_bytes"].(float64) <= 0 {
		t.Errorf("size_bytes = %v", sum["size_bytes"])
	}
	// Multimedia objects cannot be expanded (play them instead).
	get(t, ts.URL+"/objects/show/expand", 400)
	get(t, ts.URL+"/objects/ghost/expand", 404)
}

// TestConcurrentExpandSingleflight fires many concurrent /expand
// requests at one derived object and asserts, via /metrics, that each
// object in its derivation chain was decoded exactly once.
func TestConcurrentExpandSingleflight(t *testing.T) {
	ts, _ := derivedServer(t)
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/objects/cut/expand")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var m struct {
		Objects        int `json:"objects"`
		ExpansionCache struct {
			Hits          int64 `json:"hits"`
			Misses        int64 `json:"misses"`
			Evictions     int64 `json:"evictions"`
			BytesResident int64 `json:"bytes_resident"`
			CapacityBytes int64 `json:"capacity_bytes"`
			Entries       int64 `json:"entries"`
		} `json:"expansion_cache"`
	}
	if err := json.Unmarshal(metricsJSON(t, ts.URL), &m); err != nil {
		t.Fatal(err)
	}
	if m.Objects != 4 { // clip, song, show, cut
		t.Errorf("objects = %d", m.Objects)
	}
	c := m.ExpansionCache
	// Expanding "cut" also expands its input "clip": two decodes
	// total, no matter how many clients raced.
	if c.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one decode per object)", c.Misses)
	}
	if c.Hits != clients-1 {
		t.Errorf("hits = %d, want %d", c.Hits, clients-1)
	}
	if c.Entries != 2 || c.BytesResident <= 0 || c.BytesResident > c.CapacityBytes {
		t.Errorf("cache = %+v", c)
	}
}

func TestCutEndpoint(t *testing.T) {
	ts, db := testServer(t)
	resp, err := http.Post(ts.URL+"/objects/clip/cut?out=webcut&from=2&to=6", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	obj, err := db.Lookup("webcut")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Expand(obj.ID)
	if err != nil || len(v.Video) != 4 {
		t.Fatalf("cut expand: %v", err)
	}
	// Bad query.
	resp2, _ := http.Post(ts.URL+"/objects/clip/cut?out=&from=a", "", nil)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cut = %d", resp2.StatusCode)
	}
}

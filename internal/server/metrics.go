package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// GET /metrics is content-negotiated: Prometheus text exposition by
// default (the format scrapers expect), the pre-existing JSON shape
// when the client asks for application/json. The Prometheus view
// covers the latency histograms and legacy counter from the registry
// plus every counter the JSON shape already reported (objects,
// expansion cache, journal, recovery, lifecycle), so nothing is lost
// by scraping only one format.

const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, metricsReply{
			Objects:        s.db.Len(),
			ExpansionCache: s.db.CacheStats(),
			Journal:        s.db.JournalStats(),
			Recovery:       s.db.Recovery(),
			Lifecycle:      s.stats.snapshot(),
			LegacyRequests: s.legacy.Load(),
		})
		return
	}
	w.Header().Set("Content-Type", prometheusContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		return
	}
	s.writePromCounters(w)
}

// writePromCounters renders the stats structs that predate the
// registry (they live in their own atomic structs, not as registry
// series) in Prometheus text format.
func (s *Server) writePromCounters(w io.Writer) {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	c := s.db.CacheStats()
	j := s.db.JournalStats()
	rec := s.db.Recovery()
	l := s.stats.snapshot()

	promGauge(w, "tbm_objects", "objects in the catalog", int64(s.db.Len()))

	promCounter(w, "tbm_expcache_hits_total", "expansion cache hits (resident or joined flight)", c.Hits)
	promCounter(w, "tbm_expcache_misses_total", "expansion cache misses (decodes started)", c.Misses)
	promCounter(w, "tbm_expcache_evictions_total", "values evicted to respect the byte capacity", c.Evictions)
	promCounter(w, "tbm_expcache_errors_total", "expansion computations that failed", c.Errors)
	promGauge(w, "tbm_expcache_bytes_resident", "bytes of cached expansion values", c.BytesResident)
	promGauge(w, "tbm_expcache_capacity_bytes", "expansion cache byte bound (0 = unbounded)", c.CapacityBytes)
	promGauge(w, "tbm_expcache_entries", "resident expansion values", c.Entries)
	promGauge(w, "tbm_expcache_in_flight", "expansion computations running now", c.InFlight)
	fmt.Fprintf(w, "# TYPE tbm_expcache_compute_seconds_total counter\ntbm_expcache_compute_seconds_total %g\n",
		float64(c.ComputeNanos)/1e9)

	promCounter(w, "tbm_blob_corruptions_total", "payload files quarantined on checksum mismatch", s.db.BlobCorruptions())

	promCounter(w, "tbm_journal_appends_total", "journal records appended", j.Appends)
	promCounter(w, "tbm_journal_bytes_appended_total", "journal bytes appended", j.BytesAppended)
	promCounter(w, "tbm_journal_syncs_total", "journal fsyncs", j.Syncs)
	promCounter(w, "tbm_journal_batches_total", "group commits (one write+fsync each)", j.Batches)
	promCounter(w, "tbm_journal_resets_total", "journal truncations after snapshots", j.Resets)
	promCounter(w, "tbm_journal_append_errors_total", "failed journal appends", j.AppendErrors)

	promGauge(w, "tbm_recovery_snapshot_loaded", "whether the last load found a snapshot", int64(b2i(rec.SnapshotLoaded)))
	promGauge(w, "tbm_recovery_used_backup", "whether the last load fell back to the backup snapshot", int64(b2i(rec.UsedBackup)))
	promGauge(w, "tbm_recovery_journal_records_replayed", "journal records replayed at last load", int64(rec.JournalRecords))
	promGauge(w, "tbm_recovery_journal_records_skipped", "journal records skipped at last load", int64(rec.JournalSkipped))
	promGauge(w, "tbm_recovery_journal_torn", "whether the last load truncated a torn journal tail", int64(b2i(rec.JournalTorn)))

	promCounter(w, "tbm_http_panics_recovered_total", "handler panics converted to 500s", l.PanicsRecovered)
	promCounter(w, "tbm_http_load_shed_total", "requests shed with 503 at the in-flight bound", l.LoadShed)
	promGauge(w, "tbm_http_in_flight", "requests currently in flight", l.InFlight)
	promCounter(w, "tbm_http_streams_truncated_total", "streams cut short by a mid-stream payload error", l.StreamsTruncated)
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"timedmedia/internal/catalog"
	"timedmedia/internal/fixtures"
)

// replicaServer builds a server configured the way tbmserve configures
// a follower: not ready until the flag flips, writes rejected toward
// the primary, replication status merged into /healthz.
func replicaServer(t *testing.T) (*httptest.Server, *struct {
	ready    bool
	promoted bool
}) {
	t.Helper()
	state := &struct {
		ready    bool
		promoted bool
	}{}
	db := fixtures.NewMemDB()
	if _, err := db.Ingest("clip", fixtures.Video(4, 32, 24, 9), catalog.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := New(db,
		WithReadiness(func() (bool, string) {
			if state.ready {
				return true, ""
			}
			return false, "replica catching up: applied seq 3, primary at 9"
		}),
		WithWriteGate(func() (bool, string) {
			if state.promoted {
				return true, ""
			}
			return false, "http://primary.example:8080"
		}),
		WithReplStatus(func() any {
			return map[string]any{"role": "follower", "lag_seqs": 6}
		}),
	)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, state
}

func TestReadyzDistinctFromHealthz(t *testing.T) {
	ts, state := replicaServer(t)

	// Liveness stays 200 regardless of catch-up state, and carries the
	// replication block.
	body := get(t, ts.URL+"/healthz", http.StatusOK)
	var health struct {
		Status      string `json:"status"`
		Replication struct {
			Role    string `json:"role"`
			LagSeqs int    `json:"lag_seqs"`
		} `json:"replication"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Replication.Role != "follower" || health.Replication.LagSeqs != 6 {
		t.Errorf("healthz = %s", body)
	}

	// Readiness is 503 with a JSON reason while behind...
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	notReady, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while catching up = %d (%s)", resp.StatusCode, notReady)
	}
	var nr struct{ Status, Reason string }
	if err := json.Unmarshal(notReady, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.Status != "not_ready" || !strings.Contains(nr.Reason, "catching up") {
		t.Errorf("readyz body = %s", notReady)
	}

	// ...and 200 once caught up.
	state.ready = true
	body = get(t, ts.URL+"/v1/readyz", http.StatusOK)
	if !strings.Contains(string(body), "ready") {
		t.Errorf("ready body = %s", body)
	}
}

func TestReadyzDefaultsReadyWithoutOption(t *testing.T) {
	ts, _ := testServer(t)
	get(t, ts.URL+"/v1/readyz", http.StatusOK)
	// And /healthz has no replication block on a standalone node.
	body := get(t, ts.URL+"/healthz", http.StatusOK)
	if strings.Contains(string(body), "replication") {
		t.Errorf("standalone healthz mentions replication: %s", body)
	}
}

func TestWriteGateRejectsMutations(t *testing.T) {
	ts, state := replicaServer(t)

	check409 := func(resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("replica write = %d (%s), want 409", resp.StatusCode, body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != CodeReadOnly || !strings.Contains(env.Error.Message, "http://primary.example:8080") {
			t.Errorf("envelope = %s", body)
		}
		if got := resp.Header.Get("X-Primary"); got != "http://primary.example:8080" {
			t.Errorf("X-Primary = %q", got)
		}
	}
	check409(http.Post(ts.URL+"/v1/objects/clip/cut?out=c&from=0&to=2", "", nil))
	check409(http.Post(ts.URL+"/v1/objects:batch", "application/json",
		strings.NewReader(`{"items":[{"name":"x","kind":"video","frames":1}]}`)))

	// Reads keep flowing on the gated replica.
	get(t, ts.URL+"/v1/objects/clip", http.StatusOK)

	// Promotion flips the gate: the same request now mutates.
	state.promoted = true
	get(t, ts.URL+"/v1/objects/clip", http.StatusOK)
	resp, err := http.Post(ts.URL+"/v1/objects/clip/cut?out=c&from=0&to=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-promotion cut = %d (%s)", resp.StatusCode, body)
	}
}

func TestWithRouteMountsExtraHandler(t *testing.T) {
	db := fixtures.NewMemDB()
	srv := New(db, WithRoute("GET /v1/repl/ping", "repl_ping",
		func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("pong")) }))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if body := get(t, ts.URL+"/v1/repl/ping", http.StatusOK); string(body) != "pong" {
		t.Errorf("extra route body = %q", body)
	}
}

func TestBlobCorruptionsMetricExposed(t *testing.T) {
	ts, _ := testServer(t)
	body := get(t, ts.URL+"/metrics", http.StatusOK)
	if !strings.Contains(string(body), "tbm_blob_corruptions_total 0") {
		t.Error("metrics exposition missing tbm_blob_corruptions_total")
	}
}

// Package server exposes a catalog over HTTP — the "video on-demand
// services" the paper's introduction names as a driver for multimedia
// databases. The API is read-mostly and element-oriented: clients
// browse objects, inspect descriptors and timelines, fetch individual
// elements by index or time, and stream an object's elements in
// presentation order.
//
// Object routes are versioned under /v1 (the pre-versioning paths
// still work via an internal rewrite, counted in
// tbm_legacy_requests_total):
//
//	GET /v1/objects?limit=&offset=          paginated object list (JSON)
//	GET /v1/query?...                       indexed structural query: kind, class,
//	                                        attr.K=V, derived_from, live_at,
//	                                        overlaps, durations, sort, pagination
//	                                        (see query.go)
//	GET /v1/objects/{name}                  one object: descriptor, categories, attrs
//	GET /v1/objects/{name}/element/{i}      raw payload of element i
//	GET /v1/objects/{name}/at/{tick}        payload of the element covering tick
//	GET /v1/objects/{name}/stream?from=&to= chunked elements in presentation order
//	GET /v1/objects/{name}/expand           expand (decode) an object; JSON summary
//	GET /v1/objects/{name}/timeline         multimedia timeline (JSON)
//	GET /v1/objects/{name}/lineage          Figure 5 layers (JSON)
//	POST /v1/objects/{name}/cut?out=&from=&to=  create an edit derivation
//	POST /v1/objects:batch                  atomic multi-object create (JSON)
//	GET /v1/debug/trace                     recent request traces (JSON)
//	GET /metrics                            Prometheus text exposition;
//	                                        JSON under Accept: application/json
//	GET /healthz                            liveness probe (+ replication status
//	                                        when the node replicates)
//	GET /v1/readyz                          readiness probe: 503 + reason while a
//	                                        replica is catching up
//
// A replica additionally rejects the mutating routes with 409
// read_only (X-Primary names where to write) and mounts the
// replication feed endpoints of internal/repl via WithRoute.
//
// Every response carries an X-Request-ID header; API errors are JSON
// envelopes {"error":{"code":"...","message":"..."}} (see errors.go).
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/expcache"
	"timedmedia/internal/interp"
	"timedmedia/internal/query"
	"timedmedia/internal/telemetry"
	"timedmedia/internal/wal"
	"timedmedia/internal/workload"
)

// DefaultMaxInFlight bounds concurrent requests when no option is
// given; requests beyond it are shed with 503 + Retry-After.
const DefaultMaxInFlight = 1024

// DefaultRequestTimeout is the per-request context deadline when no
// option is given.
const DefaultRequestTimeout = 30 * time.Second

// Option configures a Server.
type Option func(*serverConfig)

type serverConfig struct {
	maxInFlight    int
	requestTimeout time.Duration
	registry       *telemetry.Registry
	accessLog      *slog.Logger
	traceCapacity  int
	readiness      func() (bool, string)
	writeGate      func() (bool, string)
	replStatus     func() any
	extraRoutes    []extraRoute
	traceRecorder  *workload.Recorder
}

type extraRoute struct {
	pattern, name string
	h             http.HandlerFunc
}

// WithMaxInFlight bounds concurrent requests to n; n <= 0 removes the
// bound.
func WithMaxInFlight(n int) Option {
	return func(c *serverConfig) { c.maxInFlight = n }
}

// WithRequestTimeout sets the per-request context deadline; d <= 0
// disables it.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *serverConfig) { c.requestTimeout = d }
}

// WithTelemetry uses reg for the server's histograms and counters
// instead of a fresh registry, so one /metrics exposition can cover
// several components sharing it.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *serverConfig) { c.registry = reg }
}

// WithAccessLog emits one structured line per request (request ID,
// route, status, bytes, duration) to l.
func WithAccessLog(l *slog.Logger) Option {
	return func(c *serverConfig) { c.accessLog = l }
}

// WithTraceCapacity sizes the in-memory ring of recent request traces
// served at /v1/debug/trace (default telemetry.DefaultTraceCapacity).
func WithTraceCapacity(n int) Option {
	return func(c *serverConfig) { c.traceCapacity = n }
}

// WithReadiness installs the GET /v1/readyz probe: ready() false makes
// the endpoint answer 503 with the returned reason. Without it the
// server is ready whenever it is serving. Liveness (/healthz) is
// unaffected — a catching-up replica is alive but not ready.
func WithReadiness(ready func() (ok bool, reason string)) Option {
	return func(c *serverConfig) { c.readiness = ready }
}

// WithWriteGate guards the mutating routes (cut, batch): when allowed()
// is false they answer 409 read_only, with the returned primary URL in
// the message and an X-Primary header so clients can redirect
// themselves. Replicas install this until promotion.
func WithWriteGate(allowed func() (ok bool, primary string)) Option {
	return func(c *serverConfig) { c.writeGate = allowed }
}

// WithReplStatus merges status() into the /healthz body under
// "replication", surfacing role, seq, and lag next to liveness.
func WithReplStatus(status func() any) Option {
	return func(c *serverConfig) { c.replStatus = status }
}

// WithTraceRecorder captures every completed request into rec for
// deterministic replay and policy scoring (tbmserve -trace-out). The
// capture layer sits outside the load-shedding limiter, so shed
// requests are recorded (flagged Shed) rather than lost.
func WithTraceRecorder(rec *workload.Recorder) Option {
	return func(c *serverConfig) { c.traceRecorder = rec }
}

// WithRoute mounts an extra handler (e.g. the replication feed or the
// promote hook) on the server's mux with the same per-route telemetry
// as the built-in endpoints.
func WithRoute(pattern, name string, h http.HandlerFunc) Option {
	return func(c *serverConfig) {
		c.extraRoutes = append(c.extraRoutes, extraRoute{pattern: pattern, name: name, h: h})
	}
}

// Server serves a catalog over HTTP.
type Server struct {
	db         *catalog.DB
	mux        *http.ServeMux
	handler    http.Handler
	stats      lifecycleStats
	readiness  func() (bool, string)
	writeGate  func() (bool, string)
	replStatus func() any

	reg         *telemetry.Registry
	tracer      *telemetry.Tracer
	legacy      *telemetry.Counter
	lookupHist  *telemetry.Histogram
	payloadHist *telemetry.Histogram
	accessLog   *slog.Logger
}

// New builds a Server over db. The handler chain recovers panics,
// records request telemetry, sheds load beyond the in-flight bound,
// deadlines every request, and rewrites legacy unversioned routes
// (see middleware.go).
//
// Registry resolution: an explicit WithTelemetry wins, else a registry
// already attached to db is shared, else a fresh one is created. The
// resolved registry is (re)attached to db so catalog stage histograms
// always land in the same exposition.
func New(db *catalog.DB, opts ...Option) *Server {
	cfg := serverConfig{maxInFlight: DefaultMaxInFlight, requestTimeout: DefaultRequestTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.registry
	if reg == nil {
		reg = db.Telemetry()
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	db.SetTelemetry(reg)

	s := &Server{
		db:          db,
		mux:         http.NewServeMux(),
		reg:         reg,
		tracer:      telemetry.NewTracer(cfg.traceCapacity),
		legacy:      reg.Counter(telemetry.LegacyCounter, ""),
		lookupHist:  reg.Histogram(telemetry.StageFamily, telemetry.StageLookup),
		payloadHist: reg.Histogram(telemetry.StageFamily, telemetry.StagePayload),
		accessLog:   cfg.accessLog,
		readiness:   cfg.readiness,
		writeGate:   cfg.writeGate,
		replStatus:  cfg.replStatus,
	}
	s.route("GET /v1/objects", "list", s.handleList)
	s.route("GET /v1/query", "query", s.handleQuery)
	s.route("GET /v1/objects/{name}", "object", s.handleObject)
	s.route("GET /v1/objects/{name}/element/{i}", "element", s.handleElement)
	s.route("GET /v1/objects/{name}/at/{tick}", "at", s.handleAt)
	s.route("GET /v1/objects/{name}/stream", "stream", s.handleStream)
	s.route("GET /v1/objects/{name}/expand", "expand", s.handleExpand)
	s.route("GET /v1/objects/{name}/timeline", "timeline", s.handleTimeline)
	s.route("GET /v1/objects/{name}/lineage", "lineage", s.handleLineage)
	s.route("POST /v1/objects/{name}/cut", "cut", s.handleCut)
	s.route("POST /v1/objects:batch", "batch", s.handleBatch)
	s.route("GET /v1/debug/trace", "trace", s.handleTrace)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /v1/readyz", "readyz", s.handleReadyz)
	for _, er := range cfg.extraRoutes {
		s.route(er.pattern, er.name, er.h)
	}

	var slots chan struct{}
	if cfg.maxInFlight > 0 {
		slots = make(chan struct{}, cfg.maxInFlight)
	}
	s.handler = recoverMiddleware(&s.stats,
		s.telemetryMiddleware(
			s.captureMiddleware(cfg.traceRecorder,
				limitMiddleware(&s.stats, slots, time.Second,
					timeoutMiddleware(cfg.requestTimeout,
						s.legacyRewrite(s.mux))))))
	return s
}

// route registers a handler under a stable route name. The name labels
// the per-route latency series (created eagerly so /metrics lists
// every endpoint from the start) and is reported back to the telemetry
// middleware and onto the request trace.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.reg.Histogram(telemetry.RequestFamily, `route="`+name+`"`)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if rh := routeFrom(r.Context()); rh != nil {
			rh.name = name
		}
		telemetry.TraceFrom(r.Context()).SetRoute(name)
		h(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// objectSummary is the list/detail JSON shape.
type objectSummary struct {
	ID         uint64            `json:"id"`
	Name       string            `json:"name"`
	Class      string            `json:"class"`
	Kind       string            `json:"kind"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Descriptor string            `json:"descriptor,omitempty"`
	Categories string            `json:"categories,omitempty"`
	Elements   int               `json:"elements,omitempty"`
	Bytes      int64             `json:"bytes,omitempty"`
	Derivation string            `json:"derivation,omitempty"`
}

// summarize renders an object against the epoch view it was read
// from — the interpretation table is part of the epoch, so descriptor
// and element counts stay consistent with the pinned object.
func (s *Server) summarize(v readView, obj *core.Object) objectSummary {
	out := objectSummary{
		ID:    uint64(obj.ID),
		Name:  obj.Name,
		Class: obj.Class.String(),
		Kind:  obj.Kind.String(),
		Attrs: obj.Attrs,
	}
	switch obj.Class {
	case core.ClassNonDerived:
		if tr, err := s.track(v, obj); err == nil {
			out.Descriptor = tr.Descriptor().String()
			out.Categories = tr.Stream().Classify().String()
			out.Elements = tr.Len()
			out.Bytes = tr.TotalBytes()
		}
	case core.ClassDerived:
		out.Derivation = fmt.Sprintf("%s%v", obj.Derivation.Op, obj.Derivation.Inputs)
	}
	return out
}

func (s *Server) track(v readView, obj *core.Object) (*interp.Track, error) {
	_, tr, err := s.source(v, obj)
	return tr, err
}

// source resolves a stored object to its interpretation and track, as
// of the epoch view the object was read from. Derived and multimedia
// objects have no stored elements — they must be expanded/played
// instead — so they fail with ErrNotMedia rather than a
// nil-interpretation panic.
func (s *Server) source(v readView, obj *core.Object) (*interp.Interpretation, *interp.Track, error) {
	if obj.Class != core.ClassNonDerived {
		return nil, nil, fmt.Errorf("%w: %s has no stored elements", catalog.ErrNotMedia, obj.Name)
	}
	it, err := v.Interpretation(obj.Blob)
	if err != nil {
		return nil, nil, err
	}
	tr, err := it.Track(obj.Track)
	if err != nil {
		return nil, nil, err
	}
	return it, tr, nil
}

// payload fetches one element's bytes, timing the fetch into the
// payload stage histogram and the request trace.
func (s *Server) payload(r *http.Request, it *interp.Interpretation, track string, i int) ([]byte, error) {
	done := telemetry.StartSpan(r.Context(), "payload")
	start := time.Now()
	data, err := it.Payload(track, i)
	s.payloadHist.Observe(time.Since(start))
	done()
	return data, err
}

// writeJSON encodes to a buffer first so an encoding failure can still
// produce a clean 500: calling http.Error after the encoder has
// written part of the body would corrupt the response.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// writeJSONStatus is writeJSON with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// listReply is the paginated shape of GET /v1/objects and /v1/query.
// Epoch names the epoch the page was computed against — pass it back
// as ?epoch= to make the next page mutually consistent with this one.
// NextOffset is present only when more objects follow the returned
// page.
type listReply struct {
	Objects    []objectSummary `json:"objects"`
	Total      int             `json:"total"`
	Epoch      uint64          `json:"epoch"`
	NextOffset *int            `json:"next_offset,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var sel catalog.IndexedQuery
	impossible := false // kind string no object ever reports
	if k := q.Get("kind"); k != "" {
		if kind, ok := parseKindName(k); ok {
			sel.Kind = &kind
		} else {
			impossible = true
		}
	}
	// A repeated attr.k=v matches if the object carries any of the
	// requested values; single-valued keys go through the attr index.
	eqs, residual := attrFilters(q)
	sel.Attrs = eqs

	if isLegacy(r.Context()) {
		// The pre-/v1 route returned a bare, unpaginated array; keep
		// that shape for existing clients.
		out := []objectSummary{}
		if !impossible {
			page, _ := v.SelectPage(sel, residual, 0, -1)
			for _, obj := range page {
				out = append(out, s.summarize(v, obj))
			}
		}
		writeJSON(w, out)
		return
	}

	limit, offset, ok := parsePage(w, q)
	if !ok {
		return
	}
	var page []*core.Object
	var total int
	if !impossible {
		// Page and total come from the same pinned view, so total can
		// never disagree with what paging over every offset would
		// return — and with an epoch= pin, neither can racing writers.
		page, total = v.SelectPage(sel, residual, offset, limit)
	}
	writeListPage(w, s, v, page, offset, total)
}

// writeListPage renders the paginated listReply envelope for page
// starting at offset out of total matches, all computed against the
// pinned view v.
func writeListPage(w http.ResponseWriter, s *Server, v readView, page []*core.Object, offset, total int) {
	// Non-nil so an empty page encodes as [] rather than null.
	out := []objectSummary{}
	for _, obj := range page {
		out = append(out, s.summarize(v, obj))
	}
	reply := listReply{Objects: out, Total: total, Epoch: v.Epoch()}
	if end := offset + len(page); end < total {
		next := end
		reply.NextOffset = &next
	}
	writeJSON(w, reply)
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	pv, ok := s.pinView(w, r)
	if !ok {
		return
	}
	// as_of= reads the object as it stood at that journal sequence —
	// including names whose object has since been deleted or revised.
	v, ok := asOfView(w, r, pv)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	writeJSON(w, s.summarize(v, obj))
}

func (s *Server) handleElement(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		badRequest(w, "bad element index")
		return
	}
	it, _, err := s.source(v, obj)
	if err != nil {
		httpError(w, err)
		return
	}
	payload, err := s.payload(r, it, obj.Track, i)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// atReply is the JSON shape of GET .../at/{tick}?format=json — the
// same objectSummary envelope the query path uses, plus the resolved
// element.
type atReply struct {
	Epoch   uint64        `json:"epoch"`
	Object  objectSummary `json:"object"`
	Element int           `json:"element"`
	Tick    int64         `json:"tick"`
	Seconds float64       `json:"seconds"`
}

// handleAt resolves the element covering an instant. The route is a
// thin alias over the planner path behind /v1/query?live_at=: the
// tick converts to seconds through the track's own time system, the
// same pinned-view planner predicate confirms the object is live at
// that instant (interval index), and the covering element index comes
// from the track. The default response is the raw element payload
// (the pre-epoch shape); ?format=json returns the shared
// objectSummary envelope instead. See README for the mapping table.
func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	tick, err := strconv.ParseInt(r.PathValue("tick"), 10, 64)
	if err != nil {
		badRequest(w, "bad tick")
		return
	}
	it, tr, err := s.source(v, obj)
	if err != nil {
		httpError(w, err)
		return
	}
	// The same predicate /v1/query?live_at= plans with, against the
	// same pinned view: an object with a timed extent must cover the
	// instant in the interval index. Untimed tracks have no span
	// there (index.go), so for them the element index alone decides.
	live, sec := true, 0.0
	if obj.Desc != nil && obj.Desc.TimeSystem().Valid() {
		sec = obj.Desc.TimeSystem().Seconds(tick)
		name := obj.Name
		live = query.At(v).LiveAt(sec).
			Where(func(o *core.Object) bool { return o.Name == name }).
			Count() > 0
	}
	i, found := tr.ElementAt(tick)
	if !found || !live {
		writeError(w, http.StatusNotFound, CodeNoElement, "no element at tick")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, atReply{
			Epoch:   v.Epoch(),
			Object:  s.summarize(v, obj),
			Element: i,
			Tick:    tick,
			Seconds: sec,
		})
		return
	}
	payload, err := s.payload(r, it, obj.Track, i)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Element-Index", strconv.Itoa(i))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// handleStream sends elements [from, to) in presentation order as a
// length-prefixed byte stream: for each element an 8-byte big-endian
// length then the payload. A mid-stream failure cannot change the
// status line (headers are long gone), so the error is reported in the
// X-Stream-Error trailer — its absence distinguishes completion from
// truncation — counted in lifecycle stats, and logged with the request
// ID.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	it, tr, err := s.source(v, obj)
	if err != nil {
		httpError(w, err)
		return
	}
	from, to := 0, tr.Len()
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil {
			badRequest(w, "bad from")
			return
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.Atoi(v); err != nil {
			badRequest(w, "bad to")
			return
		}
	}
	if from < 0 || to > tr.Len() || from > to {
		badRequest(w, "range out of bounds")
		return
	}
	// Declared before the body starts so net/http sends it as a real
	// HTTP trailer on the chunked response.
	w.Header().Set("Trailer", "X-Stream-Error")
	w.Header().Set("Content-Type", "application/octet-stream")
	defer telemetry.StartSpan(r.Context(), "payload")()
	wrote := false
	var hdr [8]byte
	for i := from; i < to; i++ {
		// Stop streaming when the client goes away or the request
		// deadline expires; headers are already sent, so the stream
		// truncates, with the reason in the trailer.
		if err := r.Context().Err(); err != nil {
			w.Header().Set("X-Stream-Error", err.Error())
			return
		}
		start := time.Now()
		payload, err := it.Payload(obj.Track, i)
		s.payloadHist.Observe(time.Since(start))
		if err != nil {
			if !wrote {
				// Nothing sent yet: a proper error response is still
				// possible.
				httpError(w, err)
				return
			}
			s.stats.streamTruncated.Add(1)
			s.logStreamError(r, obj.Name, i, err)
			w.Header().Set("X-Stream-Error", fmt.Sprintf("element %d: %v", i, err))
			return
		}
		n := uint64(len(payload))
		for b := 0; b < 8; b++ {
			hdr[b] = byte(n >> (56 - 8*b))
		}
		if _, err := w.Write(hdr[:]); err != nil {
			return
		}
		wrote = true
		if _, err := w.Write(payload); err != nil {
			return
		}
	}
}

// logStreamError records a mid-stream truncation with enough context
// to find the request again.
func (s *Server) logStreamError(r *http.Request, name string, elem int, err error) {
	rid := telemetry.RequestIDFrom(r.Context())
	if s.accessLog != nil {
		s.accessLog.Error("stream truncated",
			slog.String("request_id", rid),
			slog.String("object", name),
			slog.Int("element", elem),
			slog.String("error", err.Error()),
		)
		return
	}
	log.Printf("server: stream truncated request_id=%s object=%s element=%d: %v", rid, name, elem, err)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	// Graph assembly resolves components against the current epoch;
	// only the root lookup is pinned. Composition edges are immutable
	// once committed, so the view can only differ on deletions — and a
	// deleted component fails the build with not_found, never a torn
	// timeline.
	mm, err := s.db.BuildMultimedia(obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	spans, err := mm.Timeline()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, spans)
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	v, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, v)
	if !ok {
		return
	}
	nodes, err := s.db.Lineage(obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, nodes)
}

func (s *Server) handleCut(w http.ResponseWriter, r *http.Request) {
	if !s.writeAllowed(w) {
		return
	}
	// A mutation resolves its input against the current epoch — no
	// pin, no ETag: the write's effect lands in a future epoch anyway.
	obj, ok := s.lookupPinned(w, r, s.db.CurrentView())
	if !ok {
		return
	}
	q := r.URL.Query()
	out := q.Get("out")
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
	to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
	if out == "" || err1 != nil || err2 != nil {
		badRequest(w, "want ?out=name&from=N&to=N")
		return
	}
	// The span covers the whole journaled mutation; the precise
	// journal fsync time lands in the journal_append stage histogram.
	done := telemetry.StartSpan(r.Context(), "journal_append")
	id, err := s.db.SelectDuration(obj.ID, out, from, to)
	done()
	if err != nil {
		httpError(w, err)
		return
	}
	cur := s.db.CurrentView()
	created, err := cur.Get(id)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, s.summarize(cur, created))
}

// expandSummary is the JSON shape of GET /v1/objects/{name}/expand:
// the materialized value's metadata, not its bytes (use /element or
// /stream for payloads).
type expandSummary struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"`
	Elements      int    `json:"elements"`
	DurationTicks int64  `json:"duration_ticks"`
	SizeBytes     int64  `json:"size_bytes"`
	Rate          string `json:"rate,omitempty"`
}

// handleExpand materializes an object through the expansion cache —
// the on-demand expansion of Definition 6 — and reports what was
// produced. Repeated requests hit the cache; concurrent requests for
// the same object share one decode.
func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	pv, ok := s.pinView(w, r)
	if !ok {
		return
	}
	obj, ok := s.lookupPinned(w, r, pv)
	if !ok {
		return
	}
	v, err := s.db.ExpandContext(r.Context(), obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	out := expandSummary{
		Name:          obj.Name,
		Kind:          v.Kind.String(),
		Elements:      v.Elements(),
		DurationTicks: v.DurationTicks(),
		SizeBytes:     v.SizeBytes(),
	}
	if v.Rate.Valid() {
		out.Rate = v.Rate.String()
	}
	writeJSON(w, out)
}

// metricsReply is the JSON shape of GET /metrics under
// Accept: application/json.
type metricsReply struct {
	Objects        int                    `json:"objects"`
	ExpansionCache expcache.StatsSnapshot `json:"expansion_cache"`
	Journal        wal.StatsSnapshot      `json:"journal"`
	Recovery       catalog.RecoveryInfo   `json:"recovery"`
	Lifecycle      lifecycleSnapshot      `json:"lifecycle"`
	LegacyRequests int64                  `json:"legacy_requests"`
}

// handleTrace serves the bounded ring of recent request traces,
// newest first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Snapshot()
	if traces == nil {
		traces = []telemetry.TraceRecord{}
	}
	writeJSON(w, map[string]any{"traces": traces})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"status": "ok"}
	if s.replStatus != nil {
		out["replication"] = s.replStatus()
	}
	writeJSON(w, out)
}

// handleReadyz is the readiness probe: distinct from /healthz so a
// load balancer can keep a lagging replica alive but out of rotation.
// 200 means "safe to route reads here"; 503 carries the reason.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.readiness != nil {
		if ok, reason := s.readiness(); !ok {
			writeJSONStatus(w, http.StatusServiceUnavailable,
				map[string]string{"status": "not_ready", "reason": reason})
			return
		}
	}
	// seq is the newest committed journal sequence — the upper bound a
	// client can ask for with /v1/query?as_of= (closed-loop load
	// generators draw as-of targets from it).
	writeJSON(w, map[string]any{"status": "ready", "seq": s.db.Seq()})
}

// writeAllowed guards a mutating route behind the write gate. When the
// node is a replica the response is 409 read_only naming the primary
// (also in X-Primary, so scripted clients can redirect without parsing
// the envelope).
func (s *Server) writeAllowed(w http.ResponseWriter) bool {
	if s.writeGate == nil {
		return true
	}
	ok, primary := s.writeGate()
	if ok {
		return true
	}
	msg := "read-only replica: writes must go to the primary"
	if primary != "" {
		w.Header().Set("X-Primary", primary)
		msg += " at " + primary
	}
	writeError(w, http.StatusConflict, CodeReadOnly, msg)
	return false
}

// Package server exposes a catalog over HTTP — the "video on-demand
// services" the paper's introduction names as a driver for multimedia
// databases. The API is read-mostly and element-oriented: clients
// browse objects, inspect descriptors and timelines, fetch individual
// elements by index or time, and stream an object's elements in
// presentation order.
//
//	GET /objects                         list catalog objects (JSON)
//	GET /objects/{name}                  one object: descriptor, categories, attrs
//	GET /objects/{name}/element/{i}      raw payload of element i
//	GET /objects/{name}/at/{tick}        payload of the element covering tick
//	GET /objects/{name}/stream?from=&to= chunked elements in presentation order
//	GET /objects/{name}/expand           expand (decode) an object; JSON summary
//	GET /objects/{name}/timeline         multimedia timeline (JSON)
//	GET /objects/{name}/lineage          Figure 5 layers (JSON)
//	POST /objects/{name}/cut?out=&from=&to=  create an edit derivation
//	GET /metrics                         expansion-cache and catalog counters (JSON)
//	GET /healthz                         liveness probe
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/expcache"
	"timedmedia/internal/interp"
	"timedmedia/internal/wal"
)

// DefaultMaxInFlight bounds concurrent requests when no option is
// given; requests beyond it are shed with 503 + Retry-After.
const DefaultMaxInFlight = 1024

// DefaultRequestTimeout is the per-request context deadline when no
// option is given.
const DefaultRequestTimeout = 30 * time.Second

// Option configures a Server.
type Option func(*serverConfig)

type serverConfig struct {
	maxInFlight    int
	requestTimeout time.Duration
}

// WithMaxInFlight bounds concurrent requests to n; n <= 0 removes the
// bound.
func WithMaxInFlight(n int) Option {
	return func(c *serverConfig) { c.maxInFlight = n }
}

// WithRequestTimeout sets the per-request context deadline; d <= 0
// disables it.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *serverConfig) { c.requestTimeout = d }
}

// Server serves a catalog over HTTP.
type Server struct {
	db      *catalog.DB
	mux     *http.ServeMux
	handler http.Handler
	stats   lifecycleStats
}

// New builds a Server over db. The handler chain recovers panics,
// sheds load beyond the in-flight bound, and deadlines every request
// (see middleware.go).
func New(db *catalog.DB, opts ...Option) *Server {
	cfg := serverConfig{maxInFlight: DefaultMaxInFlight, requestTimeout: DefaultRequestTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /objects", s.handleList)
	s.mux.HandleFunc("GET /objects/{name}", s.handleObject)
	s.mux.HandleFunc("GET /objects/{name}/element/{i}", s.handleElement)
	s.mux.HandleFunc("GET /objects/{name}/at/{tick}", s.handleAt)
	s.mux.HandleFunc("GET /objects/{name}/stream", s.handleStream)
	s.mux.HandleFunc("GET /objects/{name}/expand", s.handleExpand)
	s.mux.HandleFunc("GET /objects/{name}/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /objects/{name}/lineage", s.handleLineage)
	s.mux.HandleFunc("POST /objects/{name}/cut", s.handleCut)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)

	var slots chan struct{}
	if cfg.maxInFlight > 0 {
		slots = make(chan struct{}, cfg.maxInFlight)
	}
	s.handler = recoverMiddleware(&s.stats,
		limitMiddleware(&s.stats, slots, time.Second,
			timeoutMiddleware(cfg.requestTimeout, s.mux)))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// objectSummary is the list/detail JSON shape.
type objectSummary struct {
	ID         uint64            `json:"id"`
	Name       string            `json:"name"`
	Class      string            `json:"class"`
	Kind       string            `json:"kind"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Descriptor string            `json:"descriptor,omitempty"`
	Categories string            `json:"categories,omitempty"`
	Elements   int               `json:"elements,omitempty"`
	Bytes      int64             `json:"bytes,omitempty"`
	Derivation string            `json:"derivation,omitempty"`
}

func (s *Server) summarize(obj *core.Object) objectSummary {
	out := objectSummary{
		ID:    uint64(obj.ID),
		Name:  obj.Name,
		Class: obj.Class.String(),
		Kind:  obj.Kind.String(),
		Attrs: obj.Attrs,
	}
	switch obj.Class {
	case core.ClassNonDerived:
		if tr, err := s.track(obj); err == nil {
			out.Descriptor = tr.Descriptor().String()
			out.Categories = tr.Stream().Classify().String()
			out.Elements = tr.Len()
			out.Bytes = tr.TotalBytes()
		}
	case core.ClassDerived:
		out.Derivation = fmt.Sprintf("%s%v", obj.Derivation.Op, obj.Derivation.Inputs)
	}
	return out
}

func (s *Server) track(obj *core.Object) (*interp.Track, error) {
	_, tr, err := s.source(obj)
	return tr, err
}

// source resolves a stored object to its interpretation and track.
// Derived and multimedia objects have no stored elements — they must
// be expanded/played instead — so they fail with ErrNotMedia rather
// than a nil-interpretation panic.
func (s *Server) source(obj *core.Object) (*interp.Interpretation, *interp.Track, error) {
	if obj.Class != core.ClassNonDerived {
		return nil, nil, fmt.Errorf("%w: %s has no stored elements", catalog.ErrNotMedia, obj.Name)
	}
	it, err := s.db.Interpretation(obj.Blob)
	if err != nil {
		return nil, nil, err
	}
	tr, err := it.Track(obj.Track)
	if err != nil {
		return nil, nil, err
	}
	return it, tr, nil
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*core.Object, bool) {
	obj, err := s.db.Lookup(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return nil, false
	}
	return obj, true
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, catalog.ErrNotFound), errors.Is(err, interp.ErrNoTrack), errors.Is(err, interp.ErrNoElement):
		code = http.StatusNotFound
	case errors.Is(err, catalog.ErrNotComposite), errors.Is(err, catalog.ErrNotMedia),
		errors.Is(err, catalog.ErrCannotExpand), errors.Is(err, catalog.ErrNoInterp):
		code = http.StatusBadRequest
	}
	http.Error(w, err.Error(), code)
}

// writeJSON encodes to a buffer first so an encoding failure can still
// produce a clean 500: calling http.Error after the encoder has
// written part of the body would corrupt the response.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// writeJSONStatus is writeJSON with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// Non-nil so an empty catalog encodes as [] rather than null.
	out := []objectSummary{}
	for _, obj := range s.db.Select(func(o *core.Object) bool {
		if k := r.URL.Query().Get("kind"); k != "" && o.Kind.String() != k {
			return false
		}
		for key, vals := range r.URL.Query() {
			if strings.HasPrefix(key, "attr.") && o.Attrs[strings.TrimPrefix(key, "attr.")] != vals[0] {
				return false
			}
		}
		return true
	}) {
		out = append(out, s.summarize(obj))
	}
	writeJSON(w, out)
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, s.summarize(obj))
}

func (s *Server) handleElement(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		http.Error(w, "bad element index", http.StatusBadRequest)
		return
	}
	it, _, err := s.source(obj)
	if err != nil {
		httpError(w, err)
		return
	}
	payload, err := it.Payload(obj.Track, i)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	tick, err := strconv.ParseInt(r.PathValue("tick"), 10, 64)
	if err != nil {
		http.Error(w, "bad tick", http.StatusBadRequest)
		return
	}
	it, tr, err := s.source(obj)
	if err != nil {
		httpError(w, err)
		return
	}
	i, found := tr.ElementAt(tick)
	if !found {
		http.Error(w, "no element at tick", http.StatusNotFound)
		return
	}
	payload, err := it.Payload(obj.Track, i)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("X-Element-Index", strconv.Itoa(i))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// handleStream sends elements [from, to) in presentation order as a
// length-prefixed byte stream: for each element an 8-byte big-endian
// length then the payload.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	it, tr, err := s.source(obj)
	if err != nil {
		httpError(w, err)
		return
	}
	from, to := 0, tr.Len()
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad to", http.StatusBadRequest)
			return
		}
	}
	if from < 0 || to > tr.Len() || from > to {
		http.Error(w, "range out of bounds", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	var hdr [8]byte
	for i := from; i < to; i++ {
		// Stop streaming when the client goes away or the request
		// deadline expires; headers are already sent, so the stream
		// simply truncates.
		if r.Context().Err() != nil {
			return
		}
		payload, err := it.Payload(obj.Track, i)
		if err != nil {
			return // headers already sent; truncate
		}
		n := uint64(len(payload))
		for b := 0; b < 8; b++ {
			hdr[b] = byte(n >> (56 - 8*b))
		}
		if _, err := w.Write(hdr[:]); err != nil {
			return
		}
		if _, err := w.Write(payload); err != nil {
			return
		}
	}
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	mm, err := s.db.BuildMultimedia(obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	spans, err := mm.Timeline()
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, spans)
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	nodes, err := s.db.Lineage(obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, nodes)
}

func (s *Server) handleCut(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	out := q.Get("out")
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
	to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
	if out == "" || err1 != nil || err2 != nil {
		http.Error(w, "want ?out=name&from=N&to=N", http.StatusBadRequest)
		return
	}
	id, err := s.db.SelectDuration(obj.ID, out, from, to)
	if err != nil {
		httpError(w, err)
		return
	}
	created, err := s.db.Get(id)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, s.summarize(created))
}

// expandSummary is the JSON shape of GET /objects/{name}/expand: the
// materialized value's metadata, not its bytes (use /element or
// /stream for payloads).
type expandSummary struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"`
	Elements      int    `json:"elements"`
	DurationTicks int64  `json:"duration_ticks"`
	SizeBytes     int64  `json:"size_bytes"`
	Rate          string `json:"rate,omitempty"`
}

// handleExpand materializes an object through the expansion cache —
// the on-demand expansion of Definition 6 — and reports what was
// produced. Repeated requests hit the cache; concurrent requests for
// the same object share one decode.
func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	obj, ok := s.lookup(w, r)
	if !ok {
		return
	}
	v, err := s.db.ExpandContext(r.Context(), obj.ID)
	if err != nil {
		httpError(w, err)
		return
	}
	out := expandSummary{
		Name:          obj.Name,
		Kind:          v.Kind.String(),
		Elements:      v.Elements(),
		DurationTicks: v.DurationTicks(),
		SizeBytes:     v.SizeBytes(),
	}
	if v.Rate.Valid() {
		out.Rate = v.Rate.String()
	}
	writeJSON(w, out)
}

// metricsReply is the JSON shape of GET /metrics.
type metricsReply struct {
	Objects        int                    `json:"objects"`
	ExpansionCache expcache.StatsSnapshot `json:"expansion_cache"`
	Journal        wal.StatsSnapshot      `json:"journal"`
	Recovery       catalog.RecoveryInfo   `json:"recovery"`
	Lifecycle      lifecycleSnapshot      `json:"lifecycle"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, metricsReply{
		Objects:        s.db.Len(),
		ExpansionCache: s.db.CacheStats(),
		Journal:        s.db.JournalStats(),
		Recovery:       s.db.Recovery(),
		Lifecycle:      s.stats.snapshot(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

package server

import (
	"encoding/json"
	"strings"
	"testing"
)

// queryReply decodes the /v1/query list envelope.
type queryReply struct {
	Objects []struct {
		Name  string `json:"name"`
		Class string `json:"class"`
	} `json:"objects"`
	Total      int  `json:"total"`
	NextOffset *int `json:"next_offset"`
}

func runQuery(t *testing.T, baseURL, params string) queryReply {
	t.Helper()
	var r queryReply
	if err := json.Unmarshal(get(t, baseURL+"/v1/query?"+params, 200), &r); err != nil {
		t.Fatal(err)
	}
	return r
}

func queryNames(r queryReply) []string {
	out := make([]string, len(r.Objects))
	for i, o := range r.Objects {
		out[i] = o.Name
	}
	return out
}

// The fixture catalog (testServer): clip — 0.4 s video, language=en;
// song — 0.2 s tone; show — multimedia of clip@0ms + song@100ms,
// timeline [0, 0.4).
func TestQueryEndpointFilters(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		params string
		want   []string
	}{
		{"kind=video", []string{"clip"}},
		{"kind=audio", []string{"song"}},
		{"class=multimedia", []string{"show"}},
		{"class=nonderived&sort=name", []string{"clip", "song"}},
		{"attr.language=en", []string{"clip"}},
		{"attr.language=zz", []string{}},
		{"attr.language=en&attr.language=fr", []string{"clip"}}, // repeated key ORs
		{"derived_from=clip", []string{"show"}},
		{"derived_from=song", []string{"show"}},
		{"name_contains=s&sort=name", []string{"show", "song"}},
		{"live_at=0.3&sort=name", []string{"clip", "show"}},
		{"live_at=5", []string{}},
		{"overlaps=0.25,9&sort=name", []string{"clip", "show"}},
		{"min_duration=0.3", []string{"clip"}},
		{"max_duration=0.3", []string{"song"}},
		{"kind=video&attr.language=en&live_at=0.1", []string{"clip"}},
		{"sort=duration&limit=1", []string{"song"}},
	}
	for _, tc := range cases {
		r := runQuery(t, ts.URL, tc.params)
		got := queryNames(r)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.params, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.params, got, tc.want)
				break
			}
		}
	}
}

func TestQueryEndpointCount(t *testing.T) {
	ts, _ := testServer(t)
	var r map[string]int
	if err := json.Unmarshal(get(t, ts.URL+"/v1/query?count=1", 200), &r); err != nil {
		t.Fatal(err)
	}
	if r["count"] != 3 {
		t.Errorf("count = %d", r["count"])
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/query?kind=video&count=true", 200), &r); err != nil {
		t.Fatal(err)
	}
	if r["count"] != 1 {
		t.Errorf("video count = %d", r["count"])
	}
}

func TestQueryEndpointPagination(t *testing.T) {
	ts, _ := testServer(t)
	r := runQuery(t, ts.URL, "sort=name&limit=2")
	if r.Total != 3 || len(r.Objects) != 2 || r.NextOffset == nil || *r.NextOffset != 2 {
		t.Fatalf("page 1 = %v total %d next %v", queryNames(r), r.Total, r.NextOffset)
	}
	r = runQuery(t, ts.URL, "sort=name&limit=2&offset=2")
	if r.Total != 3 || len(r.Objects) != 1 || r.NextOffset != nil {
		t.Fatalf("page 2 = %v total %d next %v", queryNames(r), r.Total, r.NextOffset)
	}
	if r.Objects[0].Name != "song" {
		t.Errorf("last by name = %s", r.Objects[0].Name)
	}
	// Unsorted pagination walks in ID order with the same envelope.
	r = runQuery(t, ts.URL, "limit=1&offset=1")
	if r.Total != 3 || len(r.Objects) != 1 || r.Objects[0].Name != "song" {
		t.Errorf("ID-order page = %v total %d", queryNames(r), r.Total)
	}
}

func TestQueryEndpointBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, params := range []string{
		"kind=hologram",
		"class=imaginary",
		"live_at=noon",
		"overlaps=5",
		"overlaps=5,2",
		"overlaps=a,b",
		"min_duration=x",
		"max_duration=x",
		"sort=rating",
		"limit=-3",
		"limit=x",
		"offset=-1",
	} {
		body := get(t, ts.URL+"/v1/query?"+params, 400)
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: no error envelope: %s", params, body)
		}
	}
	// Unknown derivation source is a 404, not a 400.
	get(t, ts.URL+"/v1/query?derived_from=ghost", 404)
}

// TestQueryEndpointMetrics checks the index probe counters surface
// through /metrics after indexed queries ran.
func TestQueryEndpointMetrics(t *testing.T) {
	ts, _ := testServer(t)
	runQuery(t, ts.URL, "kind=video")
	runQuery(t, ts.URL, "live_at=0.1")
	runQuery(t, ts.URL, "") // no indexable filter → scan fallback
	out := string(get(t, ts.URL+"/metrics", 200))
	for _, want := range []string{
		`tbm_index_probes_total{index="kind"}`,
		`tbm_index_probes_total{index="interval"}`,
		"tbm_index_scan_fallback_total",
		`tbm_http_request_duration_seconds_count{route="query"}`,
		`tbm_stage_duration_seconds_count{stage="query_plan"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
}

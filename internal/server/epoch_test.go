package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// getWithHeaders is get plus the response headers.
func getWithHeaders(t *testing.T, url string, hdr map[string]string, wantCode int) ([]byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d (%s), want %d", url, resp.StatusCode, body, wantCode)
	}
	return body, resp.Header
}

// TestETagAndNotModified: every read response carries the epoch as a
// strong ETag; If-None-Match with the current tag answers 304, and a
// commit invalidates the tag.
func TestETagAndNotModified(t *testing.T) {
	ts, db := testServer(t)

	_, hdr := getWithHeaders(t, ts.URL+"/v1/objects", nil, 200)
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("list response has no ETag")
	}

	// Same tag on every read route — they resolve the same epoch.
	for _, path := range []string{"/v1/query", "/v1/objects/clip", "/v1/objects/clip/element/0", "/v1/objects/clip/stream"} {
		if _, h := getWithHeaders(t, ts.URL+path, nil, 200); h.Get("ETag") != etag {
			t.Errorf("GET %s ETag = %q, want %q", path, h.Get("ETag"), etag)
		}
	}

	// If-None-Match with the current tag: 304, empty body.
	body, _ := getWithHeaders(t, ts.URL+"/v1/objects", map[string]string{"If-None-Match": etag}, 304)
	if len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}
	// Weak-compare and wildcard forms match too.
	getWithHeaders(t, ts.URL+"/v1/objects", map[string]string{"If-None-Match": "W/" + etag}, 304)
	getWithHeaders(t, ts.URL+"/v1/objects", map[string]string{"If-None-Match": `"0", ` + etag}, 304)
	getWithHeaders(t, ts.URL+"/v1/objects", map[string]string{"If-None-Match": "*"}, 304)

	// A commit publishes a new epoch: the old tag no longer matches.
	clip, _ := db.Lookup("clip")
	if _, err := db.SelectDuration(clip.ID, "cut9", 0, 5); err != nil {
		t.Fatal(err)
	}
	body, hdr = getWithHeaders(t, ts.URL+"/v1/objects", map[string]string{"If-None-Match": etag}, 200)
	if hdr.Get("ETag") == etag {
		t.Error("ETag unchanged across a commit")
	}
	if len(body) == 0 {
		t.Error("stale If-None-Match must get a full body")
	}
}

// TestEpochPinnedPagination is the regression test for pagination
// racing writers: with an epoch= pin, a page and its total are
// computed against the pinned epoch, so a commit between pages can
// change neither.
func TestEpochPinnedPagination(t *testing.T) {
	ts, db := testServer(t) // clip, song, show (IDs ascending)

	var page1 listReply
	if err := json.Unmarshal(get(t, ts.URL+"/v1/objects?limit=2", 200), &page1); err != nil {
		t.Fatal(err)
	}
	if page1.Total != 3 || len(page1.Objects) != 2 || page1.NextOffset == nil || *page1.NextOffset != 2 {
		t.Fatalf("page1 = %+v", page1)
	}
	pin := "&epoch=" + jsonUint(t, page1.Epoch)

	// A writer commits between the pages.
	clip, _ := db.Lookup("clip")
	if _, err := db.SelectDuration(clip.ID, "latecomer", 0, 5); err != nil {
		t.Fatal(err)
	}

	// Pinned page 2: still sees 3 objects total, exactly the one
	// object that followed page 1 in the pinned epoch, and no further
	// page.
	var page2 listReply
	if err := json.Unmarshal(get(t, ts.URL+"/v1/objects?limit=2&offset=2"+pin, 200), &page2); err != nil {
		t.Fatal(err)
	}
	if page2.Total != 3 || page2.Epoch != page1.Epoch || page2.NextOffset != nil {
		t.Errorf("pinned page2 = %+v", page2)
	}
	if len(page2.Objects) != 1 || page2.Objects[0].Name != "show" {
		t.Errorf("pinned page2 objects = %+v", page2.Objects)
	}

	// Unpinned page 2 sees the new epoch: 4 total.
	var fresh listReply
	if err := json.Unmarshal(get(t, ts.URL+"/v1/objects?limit=2&offset=2", 200), &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Total != 4 || fresh.Epoch <= page1.Epoch {
		t.Errorf("unpinned page2 = total %d epoch %d", fresh.Total, fresh.Epoch)
	}

	// The pin works on /v1/query too, including count.
	var count struct {
		Count int    `json:"count"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(get(t, ts.URL+"/v1/query?count=1"+pin, 200), &count); err != nil {
		t.Fatal(err)
	}
	if count.Count != 3 || count.Epoch != page1.Epoch {
		t.Errorf("pinned count = %+v", count)
	}
}

func jsonUint(t *testing.T, n uint64) string {
	t.Helper()
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEpochPinErrors: an unparsable epoch is 400; a future or retired
// epoch is 410 epoch_gone.
func TestEpochPinErrors(t *testing.T) {
	ts, db := testServer(t)

	body := get(t, ts.URL+"/v1/objects?epoch=x", 400)
	var env errorEnvelope
	json.Unmarshal(body, &env)
	if env.Error.Code != CodeBadRequest {
		t.Errorf("bad epoch code = %q", env.Error.Code)
	}

	// Future epoch: never published.
	body, _ = getWithHeaders(t, ts.URL+"/v1/objects?epoch=999999", nil, 410)
	env = errorEnvelope{}
	json.Unmarshal(body, &env)
	if env.Error.Code != CodeEpochGone {
		t.Errorf("future epoch code = %q", env.Error.Code)
	}

	// Retired epoch: pin the current one, then publish enough epochs
	// to push it out of the retention ring.
	cur := db.CurrentView().Epoch()
	clip, _ := db.Lookup("clip")
	for db.CurrentView().Epoch() < cur+100 {
		id, err := db.SelectDuration(clip.ID, "churn", 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	body, _ = getWithHeaders(t, ts.URL+"/v1/objects?epoch="+jsonUint(t, cur), nil, 410)
	env = errorEnvelope{}
	json.Unmarshal(body, &env)
	if env.Error.Code != CodeEpochGone {
		t.Errorf("retired epoch code = %q", env.Error.Code)
	}
}

// TestAtAliasSharedShape: /at/{tick}?format=json returns the shared
// objectSummary envelope, agreeing with the default payload response
// and with the /v1/query?live_at= planner path it aliases.
func TestAtAliasSharedShape(t *testing.T) {
	ts, _ := testServer(t) // clip: 10 video frames at 25 fps

	// Default shape: raw payload + X-Element-Index (the pre-epoch
	// contract).
	_, hdr := getWithHeaders(t, ts.URL+"/v1/objects/clip/at/5", nil, 200)
	if got := hdr.Get("X-Element-Index"); got != "5" {
		t.Errorf("X-Element-Index = %q", got)
	}
	if got := hdr.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type = %q", got)
	}

	// JSON shape: the same resolution in the shared envelope.
	var at atReply
	if err := json.Unmarshal(get(t, ts.URL+"/v1/objects/clip/at/5?format=json", 200), &at); err != nil {
		t.Fatal(err)
	}
	// Tick 5 at 25 fps is the instant 0.2 s — the documented mapping
	// seconds = TimeSystem.Seconds(tick).
	if at.Object.Name != "clip" || at.Element != 5 || at.Tick != 5 || at.Seconds != 0.2 {
		t.Errorf("at reply = %+v", at)
	}

	// The alias and the planner path agree: clip is live at the mapped
	// instant…
	var q listReply
	if err := json.Unmarshal(get(t, ts.URL+"/v1/query?live_at=0.2&name_contains=clip", 200), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Objects) != 1 || q.Objects[0].Name != "clip" {
		t.Errorf("live_at=0.2 query = %+v", q.Objects)
	}
	// …and both say no at an instant past the clip's extent.
	get(t, ts.URL+"/v1/objects/clip/at/999999", 404)
	if err := json.Unmarshal(get(t, ts.URL+"/v1/query?live_at=999999&name_contains=clip", 200), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Objects) != 0 {
		t.Errorf("live_at past end matched %+v", q.Objects)
	}
}

// TestLegacyDeprecationHeaders: every rewritten unversioned request
// advertises its deprecation and its /v1 successor.
func TestLegacyDeprecationHeaders(t *testing.T) {
	ts, _ := testServer(t)

	for path, successor := range map[string]string{
		"/objects":      "/v1/objects",
		"/objects/clip": "/v1/objects/clip",
	} {
		_, hdr := getWithHeaders(t, ts.URL+path, nil, 200)
		if got := hdr.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s Deprecation = %q", path, got)
		}
		if got := hdr.Get("Sunset"); got != legacySunset {
			t.Errorf("GET %s Sunset = %q", path, got)
		}
		want := "<" + successor + `>; rel="successor-version"`
		if got := hdr.Get("Link"); got != want {
			t.Errorf("GET %s Link = %q, want %q", path, got, want)
		}
	}

	// Versioned routes are not deprecated.
	_, hdr := getWithHeaders(t, ts.URL+"/v1/objects", nil, 200)
	if hdr.Get("Deprecation") != "" || hdr.Get("Sunset") != "" {
		t.Error("/v1 route carries deprecation headers")
	}
}

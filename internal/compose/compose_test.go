package compose

import (
	"errors"
	"strings"
	"testing"

	"timedmedia/internal/media"
	"timedmedia/internal/timebase"
)

// figure4 builds the paper's Figure 4b timeline:
//
//	video3:  0:00 – 2:10  (video)
//	audio2:  0:00 – 1:10  (narration)
//	audio1:  1:00 – 2:10  (music)
func figure4(t *testing.T) *Multimedia {
	t.Helper()
	m := New("m", timebase.Millis)
	if _, err := m.Add(Component{Name: "video3", Kind: media.KindVideo, Rate: timebase.PAL, Duration: 25 * 130}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(Component{Name: "audio2", Kind: media.KindAudio, Rate: timebase.CDAudio, Duration: 44100 * 70}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(Component{Name: "audio1", Kind: media.KindAudio, Rate: timebase.CDAudio, Duration: 44100 * 70}, 60_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFigure4Timeline(t *testing.T) {
	m := figure4(t)
	spans, err := m.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	want := []Span{
		{Name: "audio2", Start: 0, End: 70_000},
		{Name: "video3", Start: 0, End: 130_000},
		{Name: "audio1", Start: 60_000, End: 130_000},
	}
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	for i, w := range want {
		if spans[i] != w {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], w)
		}
	}
	d, err := m.Duration()
	if err != nil || d != 130_000 {
		t.Errorf("duration = %d (2:10 = 130000 ms)", d)
	}
}

func TestCrossTimeSystemConversion(t *testing.T) {
	// A PAL component of 25 frames lasts exactly 1000 ms on a millis
	// axis.
	m := New("x", timebase.Millis)
	i, _ := m.Add(Component{Name: "v", Kind: media.KindVideo, Rate: timebase.PAL, Duration: 25}, 500)
	p, _ := m.At(i)
	end, err := p.EndTicks(m.Time)
	if err != nil || end != 1500 {
		t.Errorf("end = %d err=%v", end, err)
	}
}

func TestActiveAt(t *testing.T) {
	m := figure4(t)
	names, err := m.ActiveAt(65_000) // 1:05 — all three active
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("active at 1:05 = %v", names)
	}
	names, _ = m.ActiveAt(100_000) // 1:40 — video3 + audio1
	if len(names) != 2 {
		t.Errorf("active at 1:40 = %v", names)
	}
	names, _ = m.ActiveAt(130_000) // end — nothing
	if len(names) != 0 {
		t.Errorf("active at end = %v", names)
	}
}

func TestAllenRelations(t *testing.T) {
	m := New("rel", timebase.Millis)
	ms := func(name string, start, dur int64) int {
		i, err := m.Add(Component{Name: name, Kind: media.KindAudio, Rate: timebase.Millis, Duration: dur}, start)
		if err != nil {
			t.Fatal(err)
		}
		return i
	}
	a := ms("a", 0, 10)
	b := ms("b", 20, 10) // a before b
	c := ms("c", 10, 10) // a meets c
	d := ms("d", 0, 10)  // a equals d
	e := ms("e", 2, 5)   // e during a
	f := ms("f", 0, 5)   // f starts a
	g := ms("g", 5, 5)   // g finishes a
	h := ms("h", 5, 10)  // a overlaps h

	cases := []struct {
		x, y int
		want string
	}{
		{a, b, "before"}, {b, a, "after"},
		{a, c, "meets"}, {c, a, "met-by"},
		{a, d, "equals"},
		{e, a, "during"}, {a, e, "contains"},
		{f, a, "starts"}, {a, f, "started-by"},
		{g, a, "finishes"}, {a, g, "finished-by"},
		{a, h, "overlaps"}, {h, a, "overlapped-by"},
	}
	for _, tc := range cases {
		got, err := m.Relation(tc.x, tc.y)
		if err != nil || got != tc.want {
			t.Errorf("Relation(%d,%d) = %q err=%v, want %q", tc.x, tc.y, got, err, tc.want)
		}
	}
	if _, err := m.Relation(0, 99); !errors.Is(err, ErrNoComponent) {
		t.Errorf("oob: %v", err)
	}
}

func TestAddErrors(t *testing.T) {
	m := New("x", timebase.Millis)
	if _, err := m.Add(Component{Name: "", Rate: timebase.PAL, Duration: 1}, 0); !errors.Is(err, ErrBadComponent) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := m.Add(Component{Name: "v", Duration: 1}, 0); !errors.Is(err, ErrBadComponent) {
		t.Errorf("no rate: %v", err)
	}
	if _, err := m.Add(Component{Name: "v", Rate: timebase.PAL, Duration: 1}, -1); !errors.Is(err, ErrBadStart) {
		t.Errorf("negative start: %v", err)
	}
	if _, err := m.AddSpatial(Component{Name: "v", Rate: timebase.PAL, Duration: 1}, 0, &Region{W: 0, H: 5}); !errors.Is(err, ErrBadRegion) {
		t.Errorf("bad region: %v", err)
	}
}

func TestSpatialComposition(t *testing.T) {
	m := New("scene", timebase.Millis)
	i, err := m.AddSpatial(
		Component{Name: "pip", Kind: media.KindVideo, Rate: timebase.PAL, Duration: 50},
		0, &Region{X: 10, Y: 10, W: 160, H: 120, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m.At(i)
	if p.Spatial == nil || p.Spatial.Z != 1 {
		t.Errorf("spatial = %+v", p.Spatial)
	}
}

func TestSyncConstraints(t *testing.T) {
	m := figure4(t)
	if err := m.Sync(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(0, 9, 2); !errors.Is(err, ErrNoComponent) {
		t.Errorf("oob sync: %v", err)
	}
	if err := m.Sync(0, 1, -1); !errors.Is(err, ErrBadSkew) {
		t.Errorf("negative skew: %v", err)
	}
	if len(m.Syncs()) != 1 {
		t.Errorf("syncs = %v", m.Syncs())
	}
}

func TestRenderTimeline(t *testing.T) {
	m := figure4(t)
	out, err := m.RenderTimeline(60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"video3", "audio1", "audio2", "=", "130000"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// audio1's bar must start around the middle.
	lines := strings.Split(out, "\n")
	var audio1Line string
	for _, l := range lines {
		if strings.HasPrefix(l, "audio1") {
			audio1Line = l
		}
	}
	bar := strings.Index(audio1Line, "=")
	if bar < 30 {
		t.Errorf("audio1 bar starts at col %d:\n%s", bar, out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	m := New("empty", timebase.Millis)
	out, err := m.RenderTimeline(40)
	if err != nil || !strings.Contains(out, "empty") {
		t.Errorf("out=%q err=%v", out, err)
	}
}

func TestDurationOverflowPropagates(t *testing.T) {
	m := New("x", timebase.CDAudio)
	// A component whose duration overflows when rescaled.
	if _, err := m.Add(Component{Name: "v", Kind: media.KindVideo, Rate: timebase.MustNew(1, 1000000), Duration: 1 << 60}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Duration(); err == nil {
		t.Error("expected overflow error")
	}
}

// Package compose implements composition (Definition 7 of Gibbs et
// al., SIGMOD 1994): "the specification of temporal and/or spatial
// relationships between a group of media objects. The result of
// composition is called a multimedia object, the spatiotemporally
// related objects are called its components."
//
// A Multimedia object places components on its own time axis (temporal
// composition) and optionally in a 2-D layout (spatial composition).
// Timeline computation reproduces diagrams like the paper's Figure 4b.
package compose

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"timedmedia/internal/media"
	"timedmedia/internal/timebase"
)

// Errors.
var (
	ErrBadComponent = errors.New("compose: invalid component")
	ErrBadStart     = errors.New("compose: negative start offset")
	ErrNoComponent  = errors.New("compose: no such component")
	ErrBadRegion    = errors.New("compose: invalid spatial region")
	ErrBadSkew      = errors.New("compose: sync constraint skew must be non-negative")
)

// Component describes one media object being composed: its name, kind,
// native time system and duration in its own ticks. (The catalog binds
// names to stored objects; compose is independent of storage.)
type Component struct {
	Name     string
	Kind     media.Kind
	Rate     timebase.System
	Duration int64
}

// Region is a spatial placement: position, size and stacking order —
// "placing an image within a page of text or placing graphical objects
// in a scene".
type Region struct {
	X, Y, W, H, Z int
}

// Placed is a component bound to the multimedia object's time axis
// (and optionally to a region).
type Placed struct {
	Component
	// Start is the offset on the multimedia object's time axis, in
	// ticks of the object's time system.
	Start int64
	// Spatial is nil for purely temporal composition.
	Spatial *Region
}

// EndTicks returns the component's end on the multimedia axis.
func (p Placed) EndTicks(axis timebase.System) (int64, error) {
	d, err := timebase.Rescale(p.Duration, p.Rate, axis)
	if err != nil {
		return 0, err
	}
	return p.Start + d, nil
}

// SyncConstraint requires two components to stay within MaxSkew ticks
// of relative drift during playback — the "temporal correlations"
// whose specification (not enforcement) is the data model's job.
type SyncConstraint struct {
	A, B    int // component indices
	MaxSkew int64
}

// Multimedia is a multimedia object: a named set of placed components
// over one time system.
type Multimedia struct {
	Name string
	Time timebase.System

	comps []Placed
	syncs []SyncConstraint
}

// New creates an empty multimedia object on the given time axis
// (milliseconds are customary for editing).
func New(name string, axis timebase.System) *Multimedia {
	return &Multimedia{Name: name, Time: axis}
}

// Add places a component at start (ticks of the object's axis),
// returning its index.
func (m *Multimedia) Add(c Component, start int64) (int, error) {
	return m.AddSpatial(c, start, nil)
}

// AddSpatial places a component temporally and spatially.
func (m *Multimedia) AddSpatial(c Component, start int64, region *Region) (int, error) {
	if c.Name == "" || !c.Rate.Valid() || c.Duration < 0 {
		return 0, fmt.Errorf("%w: %+v", ErrBadComponent, c)
	}
	if start < 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadStart, start)
	}
	if region != nil && (region.W <= 0 || region.H <= 0) {
		return 0, fmt.Errorf("%w: %+v", ErrBadRegion, *region)
	}
	m.comps = append(m.comps, Placed{Component: c, Start: start, Spatial: region})
	return len(m.comps) - 1, nil
}

// Sync records a synchronization constraint between two components.
func (m *Multimedia) Sync(a, b int, maxSkew int64) error {
	if a < 0 || a >= len(m.comps) || b < 0 || b >= len(m.comps) {
		return ErrNoComponent
	}
	if maxSkew < 0 {
		return ErrBadSkew
	}
	m.syncs = append(m.syncs, SyncConstraint{A: a, B: b, MaxSkew: maxSkew})
	return nil
}

// Syncs returns the declared synchronization constraints.
func (m *Multimedia) Syncs() []SyncConstraint { return append([]SyncConstraint(nil), m.syncs...) }

// Len returns the number of components.
func (m *Multimedia) Len() int { return len(m.comps) }

// At returns component i.
func (m *Multimedia) At(i int) (Placed, error) {
	if i < 0 || i >= len(m.comps) {
		return Placed{}, ErrNoComponent
	}
	return m.comps[i], nil
}

// Components returns a copy of all placed components.
func (m *Multimedia) Components() []Placed { return append([]Placed(nil), m.comps...) }

// Duration returns the multimedia object's span end in axis ticks.
func (m *Multimedia) Duration() (int64, error) {
	var end int64
	for _, p := range m.comps {
		e, err := p.EndTicks(m.Time)
		if err != nil {
			return 0, err
		}
		if e > end {
			end = e
		}
	}
	return end, nil
}

// Span is one timeline row.
type Span struct {
	Name       string
	Start, End int64 // axis ticks
}

// Timeline returns spans sorted by start then name — the data behind
// Figure 4b.
func (m *Multimedia) Timeline() ([]Span, error) {
	out := make([]Span, 0, len(m.comps))
	for _, p := range m.comps {
		e, err := p.EndTicks(m.Time)
		if err != nil {
			return nil, err
		}
		out = append(out, Span{Name: p.Name, Start: p.Start, End: e})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Name < out[b].Name
	})
	return out, nil
}

// ActiveAt returns the names of components active at axis tick t.
func (m *Multimedia) ActiveAt(t int64) ([]string, error) {
	spans, err := m.Timeline()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, s := range spans {
		if s.Start <= t && t < s.End {
			names = append(names, s.Name)
		}
	}
	return names, nil
}

// Relation names the Allen interval relation from component a to
// component b (a subset sufficient for media work: before, meets,
// overlaps, starts, during, finishes, equals, plus the inverses
// rendered by swapping).
func (m *Multimedia) Relation(a, b int) (string, error) {
	if a < 0 || a >= len(m.comps) || b < 0 || b >= len(m.comps) {
		return "", ErrNoComponent
	}
	sa, ea, err := m.spanOf(a)
	if err != nil {
		return "", err
	}
	sb, eb, err := m.spanOf(b)
	if err != nil {
		return "", err
	}
	switch {
	case sa == sb && ea == eb:
		return "equals", nil
	case ea < sb:
		return "before", nil
	case ea == sb:
		return "meets", nil
	case eb < sa:
		return "after", nil
	case eb == sa:
		return "met-by", nil
	case sa == sb:
		if ea < eb {
			return "starts", nil
		}
		return "started-by", nil
	case ea == eb:
		if sa > sb {
			return "finishes", nil
		}
		return "finished-by", nil
	case sa > sb && ea < eb:
		return "during", nil
	case sa < sb && ea > eb:
		return "contains", nil
	case sa < sb:
		return "overlaps", nil
	default:
		return "overlapped-by", nil
	}
}

func (m *Multimedia) spanOf(i int) (start, end int64, err error) {
	p := m.comps[i]
	e, err := p.EndTicks(m.Time)
	if err != nil {
		return 0, 0, err
	}
	return p.Start, e, nil
}

// RenderTimeline draws an ASCII timeline in the spirit of Figure 4b,
// with one row per component and a tick ruler in axis units.
func (m *Multimedia) RenderTimeline(width int) (string, error) {
	if width < 20 {
		width = 60
	}
	spans, err := m.Timeline()
	if err != nil {
		return "", err
	}
	total, err := m.Duration()
	if err != nil {
		return "", err
	}
	if total == 0 {
		return "(empty)\n", nil
	}
	nameW := 0
	for _, s := range spans {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	for i := len(spans) - 1; i >= 0; i-- { // top row = latest, like Fig 4b
		s := spans[i]
		from := int(s.Start * int64(width) / total)
		to := int(s.End * int64(width) / total)
		if to <= from {
			to = from + 1
		}
		fmt.Fprintf(&b, "%-*s |%s%s%s|\n", nameW, s.Name,
			strings.Repeat(" ", from), strings.Repeat("=", to-from), strings.Repeat(" ", width-to))
	}
	fmt.Fprintf(&b, "%-*s  0%*d ticks (%s)\n", nameW, "", width-1, total, m.Time)
	return b.String(), nil
}

package faultfs

import (
	"errors"
	"path/filepath"
	"testing"

	"timedmedia/internal/blob"
	"timedmedia/internal/durable"
	"timedmedia/internal/wal"
)

func TestNthOpFires(t *testing.T) {
	inj := NewInjector(Rule{Op: "create", Nth: 2})
	s := Wrap(blob.NewMemStore(), inj)

	if _, _, err := s.Create(); err != nil {
		t.Fatalf("1st create: %v", err)
	}
	if _, _, err := s.Create(); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd create: %v", err)
	}
	if _, _, err := s.Create(); err != nil {
		t.Fatalf("3rd create: %v", err)
	}
	if inj.Fired() != 1 {
		t.Errorf("fired = %d", inj.Fired())
	}
}

func TestTimesSemantics(t *testing.T) {
	// Times: 1 → fires on calls 2 and 3.
	inj := NewInjector(Rule{Op: "open", Nth: 2, Times: 1})
	s := Wrap(blob.NewMemStore(), inj)
	id, _, _ := s.Create()
	var errs []bool
	for i := 0; i < 4; i++ {
		_, err := s.Open(id)
		errs = append(errs, err != nil)
	}
	want := []bool{false, true, true, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Errorf("open %d: failed=%v, want %v", i+1, errs[i], want[i])
		}
	}

	// Times: -1 → fires forever from Nth.
	inj2 := NewInjector(Rule{Op: "ids", Nth: 1, Times: -1})
	s2 := Wrap(blob.NewMemStore(), inj2)
	for i := 0; i < 3; i++ {
		if _, err := s2.IDs(); !errors.Is(err, ErrInjected) {
			t.Errorf("ids %d: %v", i+1, err)
		}
	}
}

func TestShortAppendTearsWrite(t *testing.T) {
	inner := blob.NewMemStore()
	inj := NewInjector(Rule{Op: "append", Nth: 1, Short: true})
	s := Wrap(inner, inj)

	id, b, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append: %v", err)
	}
	// Half the bytes landed in the underlying blob — a torn write.
	raw, err := inner.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Size() != 5 {
		t.Errorf("torn size = %d, want 5", raw.Size())
	}
}

func TestTransientClassification(t *testing.T) {
	err := Transient()
	if !errors.Is(err, ErrInjected) || !durable.IsTransient(err) {
		t.Errorf("Transient() = %v", err)
	}
	if durable.IsTransient(ErrInjected) {
		t.Error("bare ErrInjected must not be transient")
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	inj := NewInjector(Rule{Op: "delete", Nth: 1, Err: boom})
	s := Wrap(blob.NewMemStore(), inj)
	if err := s.Delete(1); !errors.Is(err, boom) {
		t.Errorf("delete: %v", err)
	}
}

func TestJournalWrapper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	inner, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(Rule{Op: "journal.append", Nth: 2})
	j := WrapJournal(inner, inj)

	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("second")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the first record reached disk.
	var got int
	res, err := wal.Replay(path, func([]byte) error { got++; return nil })
	if err != nil || got != 1 || res.Torn {
		t.Fatalf("got=%d res=%+v err=%v", got, res, err)
	}
}

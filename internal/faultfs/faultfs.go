// Package faultfs injects deterministic failures into the storage
// stack so crash-recovery paths can be exercised in ordinary tests:
// error on the Nth append, short (torn) writes, open/create failures,
// journal append/rotate/compact failures, and transient errors that
// the catalog's retry-with-backoff must absorb.
//
// An Injector holds a schedule of Rules; wrappers consult it before
// delegating. Ops are counted per name ("create", "open", "append",
// "readspan", "delete", "ids", "sync", "journal.append",
// "journal.reset"), so a test can say "fail the 3rd append,
// transiently" and get exactly that, every run.
package faultfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/durable"
	"timedmedia/internal/wal"
)

// ErrInjected is the default injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// Transient returns an injected error the catalog classifies as
// retryable (wraps durable.ErrTransient).
func Transient() error {
	return fmt.Errorf("%w: %w", ErrInjected, durable.ErrTransient)
}

// Rule schedules one fault.
type Rule struct {
	// Op names the operation to intercept: "create", "open",
	// "append", "readspan", "delete", "ids", "sync",
	// "journal.append", "journal.reset", "journal.rotate",
	// "journal.compact", "net.request", "net.read".
	Op string
	// Nth fires on the Nth matching call, 1-based.
	Nth int
	// Times repeats the fault for this many consecutive calls
	// starting at Nth (0 means once; -1 means forever).
	Times int
	// Err is the error to return; nil means ErrInjected.
	Err error
	// Short, for "append" and "net.read", delivers the first half of
	// the data before failing — a torn write (or a feed cut
	// mid-frame).
	Short bool
	// Delay sleeps this long before the call proceeds. A rule with a
	// Delay and neither Err nor Short is delay-only — the call
	// succeeds slowly (a slow peer); set Err explicitly (e.g.
	// ErrInjected) to combine delay with failure.
	Delay time.Duration
}

func (r Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Injector is a deterministic fault schedule. Safe for concurrent
// use. The zero value injects nothing.
type Injector struct {
	mu     sync.Mutex
	counts map[string]int
	rules  []Rule
	fired  int
}

// NewInjector builds an injector with the given rules.
func NewInjector(rules ...Rule) *Injector {
	return &Injector{counts: map[string]int{}, rules: rules}
}

// Add appends a rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
}

// Fired returns how many faults have been injected so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Count returns how many calls to op have been seen (faulted or not).
func (in *Injector) Count(op string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// check counts one call to op and returns the scheduled fault, if
// any. The bool reports whether a short write was requested. A rule's
// Delay is slept here, outside the injector lock, so a slow-peer rule
// stalls only the faulted call.
func (in *Injector) check(op string) (error, bool) {
	err, short, delay := in.checkLocked(op)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err, short
}

func (in *Injector) checkLocked(op string) (error, bool, time.Duration) {
	if in == nil {
		return nil, false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.counts == nil {
		in.counts = map[string]int{}
	}
	in.counts[op]++
	n := in.counts[op]
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		last := r.Nth + r.Times
		if n == r.Nth || (n > r.Nth && (r.Times < 0 || n <= last)) {
			in.fired++
			if r.Delay > 0 && r.Err == nil && !r.Short {
				return nil, false, r.Delay // delay-only: slow, not broken
			}
			return r.err(), r.Short, r.Delay
		}
	}
	return nil, false, 0
}

// Store wraps a blob.Store with fault injection.
type Store struct {
	inner blob.Store
	inj   *Injector
}

// Wrap builds a fault-injecting store over inner.
func Wrap(inner blob.Store, inj *Injector) *Store {
	return &Store{inner: inner, inj: inj}
}

// Create implements blob.Store.
func (s *Store) Create() (blob.ID, blob.BLOB, error) {
	if err, _ := s.inj.check("create"); err != nil {
		return 0, nil, err
	}
	id, b, err := s.inner.Create()
	if err != nil {
		return id, b, err
	}
	return id, &faultBLOB{inner: b, inj: s.inj}, nil
}

// Open implements blob.Store.
func (s *Store) Open(id blob.ID) (blob.BLOB, error) {
	if err, _ := s.inj.check("open"); err != nil {
		return nil, err
	}
	b, err := s.inner.Open(id)
	if err != nil {
		return nil, err
	}
	return &faultBLOB{inner: b, inj: s.inj}, nil
}

// Delete implements blob.Store.
func (s *Store) Delete(id blob.ID) error {
	if err, _ := s.inj.check("delete"); err != nil {
		return err
	}
	return s.inner.Delete(id)
}

// IDs implements blob.Store.
func (s *Store) IDs() ([]blob.ID, error) {
	if err, _ := s.inj.check("ids"); err != nil {
		return nil, err
	}
	return s.inner.IDs()
}

// Stats implements blob.Store.
func (s *Store) Stats() *blob.Stats { return s.inner.Stats() }

// Sync forwards blob fsync when the inner store supports it, with an
// injection point.
func (s *Store) Sync(id blob.ID) error {
	if err, _ := s.inj.check("sync"); err != nil {
		return err
	}
	if sy, ok := s.inner.(interface{ Sync(blob.ID) error }); ok {
		return sy.Sync(id)
	}
	return nil
}

type faultBLOB struct {
	inner blob.BLOB
	inj   *Injector
}

// ReadSpan implements blob.BLOB.
func (b *faultBLOB) ReadSpan(off, n int64) ([]byte, error) {
	if err, _ := b.inj.check("readspan"); err != nil {
		return nil, err
	}
	return b.inner.ReadSpan(off, n)
}

// Append implements blob.BLOB. A Short rule writes half the data
// before failing, leaving the torn state a crashed write would.
func (b *faultBLOB) Append(data []byte) (int64, error) {
	if err, short := b.inj.check("append"); err != nil {
		if short && len(data) > 1 {
			b.inner.Append(data[:len(data)/2])
		}
		return 0, err
	}
	return b.inner.Append(data)
}

// Size implements blob.BLOB.
func (b *faultBLOB) Size() int64 { return b.inner.Size() }

// Journal wraps a wal.Appender with fault injection, so tests can
// fail the journal append that follows a successful in-memory
// mutation and assert the catalog rolls the mutation back.
type Journal struct {
	inner wal.Appender
	inj   *Injector
}

// WrapJournal builds a fault-injecting journal over inner.
func WrapJournal(inner wal.Appender, inj *Injector) *Journal {
	return &Journal{inner: inner, inj: inj}
}

// Append implements wal.Appender.
func (j *Journal) Append(data []byte) error {
	if err, _ := j.inj.check("journal.append"); err != nil {
		return err
	}
	return j.inner.Append(data)
}

// AppendBatch implements wal.Appender. Each record in the batch
// consumes one "journal.append" injection slot, so an Nth-append rule
// can fire mid-batch; when it does the whole batch fails before
// reaching the inner journal, matching the all-or-nothing contract.
func (j *Journal) AppendBatch(records [][]byte) error {
	for range records {
		if err, _ := j.inj.check("journal.append"); err != nil {
			return err
		}
	}
	return j.inner.AppendBatch(records)
}

// Enqueue implements wal.Appender. The injection point is at enqueue
// time — the same place a real enqueue reserves its log position — so
// a scheduled fault resolves the ticket immediately without touching
// the inner journal.
func (j *Journal) Enqueue(data []byte) *wal.Ticket {
	if err, _ := j.inj.check("journal.append"); err != nil {
		return wal.ErrTicket(err)
	}
	return j.inner.Enqueue(data)
}

// EnqueueBatch implements wal.Appender; per-record injection slots,
// like AppendBatch.
func (j *Journal) EnqueueBatch(records [][]byte) *wal.Ticket {
	for range records {
		if err, _ := j.inj.check("journal.append"); err != nil {
			return wal.ErrTicket(err)
		}
	}
	return j.inner.EnqueueBatch(records)
}

// Reset implements wal.Appender.
func (j *Journal) Reset() error {
	if err, _ := j.inj.check("journal.reset"); err != nil {
		return err
	}
	return j.inner.Reset()
}

// Sync implements wal.Appender.
func (j *Journal) Sync() error { return j.inner.Sync() }

// Close implements wal.Appender.
func (j *Journal) Close() error { return j.inner.Close() }

// Stats implements wal.Appender.
func (j *Journal) Stats() wal.StatsSnapshot { return j.inner.Stats() }

// SegmentedJournal wraps a wal.Segmented with fault injection,
// additionally intercepting the rotation/compaction surface
// ("journal.rotate", "journal.compact") so tests can fail a
// checkpoint's WAL cleanup independently of its appends. It is a
// distinct type from Journal on purpose: the catalog detects rotation
// support by interface assertion, and a plain WrapJournal around a
// legacy single-file journal must keep taking the legacy snapshot
// path.
type SegmentedJournal struct {
	Journal
	inner *wal.Segmented
}

// WrapSegmentedJournal builds a fault-injecting journal over a
// segmented WAL.
func WrapSegmentedJournal(inner *wal.Segmented, inj *Injector) *SegmentedJournal {
	return &SegmentedJournal{Journal: Journal{inner: inner, inj: inj}, inner: inner}
}

// Rotate forwards wal.Segmented.Rotate with a "journal.rotate"
// injection point.
func (j *SegmentedJournal) Rotate() (uint64, error) {
	if err, _ := j.inj.check("journal.rotate"); err != nil {
		return 0, err
	}
	return j.inner.Rotate()
}

// CompactThrough forwards wal.Segmented.CompactThrough with a
// "journal.compact" injection point.
func (j *SegmentedJournal) CompactThrough(through uint64) (int, error) {
	if err, _ := j.inj.check("journal.compact"); err != nil {
		return 0, err
	}
	return j.inner.CompactThrough(through)
}

// DurableBoundary forwards wal.Segmented.DurableBoundary, so a
// replication feed over a fault-injected catalog still sees the real
// acked boundary.
func (j *SegmentedJournal) DurableBoundary() (uint64, int64) {
	return j.inner.DurableBoundary()
}

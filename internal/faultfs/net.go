package faultfs

// Network fault layer: the replication feed is HTTP, so its failure
// modes — dropped connections, partitions, slow peers, a stream cut
// mid-frame — are injected at the http.RoundTripper seam rather than
// the file-system one. The same deterministic Injector schedules
// both, so a test can say "cut the 2nd feed connection after half a
// read" and get exactly that, every run.
//
// Ops:
//
//	"net.request"  counted once per outgoing request. An Err rule
//	               drops the connection attempt (Times: -1 from Nth
//	               models a partition); a Delay-only rule models a
//	               slow link.
//	"net.read"     counted once per response-body Read. An Err rule
//	               cuts the stream mid-flight; with Short, half the
//	               requested bytes are delivered first — a torn feed
//	               frame. Delay-only models a slow reader.

import (
	"io"
	"net/http"
)

// Transport wraps an http.RoundTripper with deterministic network
// fault injection on requests and response-body reads.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// WrapTransport builds a fault-injecting transport over inner (nil
// means http.DefaultTransport).
func WrapTransport(inner http.RoundTripper, inj *Injector) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, inj: inj}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err, _ := t.inj.check("net.request"); err != nil {
		return nil, err
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &faultBody{inner: resp.Body, inj: t.inj}
	return resp, nil
}

// faultBody intercepts streaming response reads so a long-lived feed
// connection can be cut (or slowed) at a precise point mid-stream.
type faultBody struct {
	inner io.ReadCloser
	inj   *Injector
	cut   bool
}

// Read implements io.Reader. A Short cut delivers half the requested
// bytes before the error surfaces on the following Read — the
// receiver sees a torn final frame, exactly like a peer crashing
// mid-send.
func (b *faultBody) Read(p []byte) (int, error) {
	if b.cut {
		return 0, ErrInjected
	}
	err, short := b.inj.check("net.read")
	if err == nil {
		return b.inner.Read(p)
	}
	b.cut = true
	if short && len(p) > 1 {
		n, rerr := b.inner.Read(p[:len(p)/2])
		b.inner.Close()
		if rerr == nil && n > 0 {
			return n, nil // the cut error surfaces on the next Read
		}
		return 0, err
	}
	b.inner.Close()
	return 0, err
}

// Close implements io.Closer.
func (b *faultBody) Close() error { return b.inner.Close() }

package timebase

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewReducesToLowestTerms(t *testing.T) {
	s, err := New(30000, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if s.Num != 30000 || s.Den != 1001 {
		t.Fatalf("got %d/%d, want 30000/1001", s.Num, s.Den)
	}
	s, err = New(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Num != 25 || s.Den != 1 {
		t.Fatalf("got %d/%d, want 25/1", s.Num, s.Den)
	}
}

func TestNewRejectsNonPositive(t *testing.T) {
	for _, c := range [][2]int64{{0, 1}, {-5, 1}, {1, 0}, {1, -3}, {0, 0}} {
		if _, err := New(c[0], c[1]); err != ErrZeroFrequency {
			t.Errorf("New(%d,%d): err = %v, want ErrZeroFrequency", c[0], c[1], err)
		}
	}
}

func TestStringNotation(t *testing.T) {
	cases := []struct {
		s    System
		want string
	}{
		{PAL, "D_25"},
		{NTSC, "D_30000/1001"},
		{CDAudio, "D_44100"},
		{Film, "D_24"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestSecondsAndFrequency(t *testing.T) {
	if got := PAL.Seconds(25); got != 1.0 {
		t.Errorf("PAL.Seconds(25) = %v, want 1", got)
	}
	if got := CDAudio.Seconds(44100); got != 1.0 {
		t.Errorf("CDAudio.Seconds(44100) = %v, want 1", got)
	}
	// 29.97... frames/s
	if f := NTSC.Frequency(); math.Abs(f-29.97002997) > 1e-6 {
		t.Errorf("NTSC.Frequency() = %v", f)
	}
}

func TestTicksFromSeconds(t *testing.T) {
	if got := PAL.TicksFromSeconds(10); got != 250 {
		t.Errorf("PAL.TicksFromSeconds(10) = %d, want 250", got)
	}
	if got := CDAudio.TicksFromSeconds(600); got != 26460000 {
		t.Errorf("CDAudio.TicksFromSeconds(600) = %d, want 26460000", got)
	}
}

func TestRescaleExactCases(t *testing.T) {
	cases := []struct {
		ticks    int64
		from, to System
		want     int64
	}{
		{25, PAL, CDAudio, 44100},              // 1 s of PAL in audio samples
		{44100, CDAudio, PAL, 25},              // and back
		{1, PAL, CDAudio, 1764},                // one PAL frame = 1764 samples
		{24, Film, PAL, 25},                    // 1 s
		{0, NTSC, CDAudio, 0},                  // zero
		{-25, PAL, CDAudio, -44100},            // negative ticks
		{30000, NTSC, MustNew(1001, 1), 30030}, // contrived exact rational hop: 30000 NTSC ticks = 1001 s = 1002001/... hmm
	}
	// fix the contrived case: 30000 ticks at 30000/1001 per s = 1001 s;
	// in a 1001 Hz system that is 1001*1001 ticks.
	cases[6].want = 1001 * 1001
	for _, c := range cases {
		got, err := Rescale(c.ticks, c.from, c.to)
		if err != nil {
			t.Fatalf("Rescale(%d, %v, %v): %v", c.ticks, c.from, c.to, err)
		}
		if got != c.want {
			t.Errorf("Rescale(%d, %v, %v) = %d, want %d", c.ticks, c.from, c.to, got, c.want)
		}
	}
}

func TestRescaleRounding(t *testing.T) {
	// 1 NTSC frame in milliseconds: 1001/30000 s = 33.3666... ms → 33.
	got, err := Rescale(1, NTSC, Millis)
	if err != nil {
		t.Fatal(err)
	}
	if got != 33 {
		t.Errorf("1 NTSC frame = %d ms, want 33", got)
	}
	// 1 PAL frame = 40 ms exactly.
	got, err = Rescale(1, PAL, Millis)
	if err != nil || got != 40 {
		t.Errorf("1 PAL frame = %d ms (err %v), want 40", got, err)
	}
	// Half-away-from-zero: 1 tick at 2 Hz → 0.5 s → 500 ms exact; at
	// 3 Hz → 333.33 ms → 333; 2 ticks at 3 Hz → 666.67 → 667.
	threeHz := MustNew(3, 1)
	if v, _ := Rescale(1, threeHz, Millis); v != 333 {
		t.Errorf("1 tick @3Hz = %d ms, want 333", v)
	}
	if v, _ := Rescale(2, threeHz, Millis); v != 667 {
		t.Errorf("2 ticks @3Hz = %d ms, want 667", v)
	}
	if v, _ := Rescale(-2, threeHz, Millis); v != -667 {
		t.Errorf("-2 ticks @3Hz = %d ms, want -667", v)
	}
}

func TestRescaleOverflow(t *testing.T) {
	huge := MustNew(math.MaxInt64, 1)
	tiny := MustNew(1, math.MaxInt64)
	if _, err := Rescale(math.MaxInt64, huge, tiny); err == nil {
		// MaxInt64 ticks at MaxInt64 Hz is MaxInt64 * 1/MaxInt64 ... = 1 tick? Let's not assert here.
		t.Skip("conversion happened to fit")
	}
}

func TestRescaleOverflowLarge(t *testing.T) {
	// Converting a huge tick count upward in frequency must overflow.
	_, err := Rescale(math.MaxInt64/2, PAL, CDAudio)
	if err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestExact(t *testing.T) {
	if !Exact(25, PAL, CDAudio) {
		t.Error("25 PAL frames should convert exactly to CD samples")
	}
	if Exact(1, NTSC, Millis) {
		t.Error("1 NTSC frame is not an exact number of milliseconds")
	}
	if !Exact(0, NTSC, Millis) {
		t.Error("0 is always exact")
	}
	if !Exact(30000, NTSC, Millis) {
		t.Error("30000 NTSC frames = 1001 s = 1001000 ms exactly")
	}
}

func TestMustRescalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRescale did not panic on overflow")
		}
	}()
	MustRescale(math.MaxInt64/2, PAL, CDAudio)
}

func TestRescaleSameSystemIdentity(t *testing.T) {
	f := func(ticks int64) bool {
		got, err := Rescale(ticks, NTSC, NTSC)
		return err == nil && got == ticks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRescaleRoundTripProperty(t *testing.T) {
	// Converting PAL→CD→PAL is lossless because 44100 is a multiple of 25... it is (1764*25).
	f := func(ticks int32) bool {
		v, err := Rescale(int64(ticks), PAL, CDAudio)
		if err != nil {
			return false
		}
		back, err := Rescale(v, CDAudio, PAL)
		if err != nil {
			return false
		}
		return back == int64(ticks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRescaleMonotoneProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		vx, err1 := Rescale(x, NTSC, CDAudio)
		vy, err2 := Rescale(y, NTSC, CDAudio)
		if err1 != nil || err2 != nil {
			return false
		}
		return vx <= vy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRescaleAgainstFloatProperty(t *testing.T) {
	// Rational rescale must agree with careful float computation within
	// one tick for moderate magnitudes.
	f := func(ticks int32) bool {
		want := math.Round(float64(ticks) * NTSC.TickDuration() * CDAudio.Frequency())
		got, err := Rescale(int64(ticks), NTSC, CDAudio)
		if err != nil {
			return false
		}
		return math.Abs(float64(got)-want) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	var zero System
	if zero.Valid() {
		t.Error("zero System must be invalid")
	}
	if !PAL.Valid() {
		t.Error("PAL must be valid")
	}
	if _, err := Rescale(1, zero, PAL); err != ErrZeroFrequency {
		t.Errorf("Rescale from invalid system: err=%v", err)
	}
}

func TestEqual(t *testing.T) {
	if !MustNew(50, 2).Equal(PAL) {
		t.Error("50/2 should equal 25/1 after reduction")
	}
	if PAL.Equal(NTSC) {
		t.Error("PAL != NTSC")
	}
}

func BenchmarkRescale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Rescale(int64(i), NTSC, CDAudio)
	}
}

// Package timebase implements discrete time systems (Definition 2 of
// Gibbs et al., "Data Modeling of Time-Based Media", SIGMOD 1994).
//
// A discrete time system D_f maps integers ("discrete time values",
// here called ticks) to real numbers ("continuous time values",
// seconds): D_f(i) = i/f. The frequency f is an exact rational so that
// broadcast rates such as NTSC's 30000/1001 frames per second carry no
// rounding error. All stream timing in this repository is expressed as
// int64 ticks relative to a System.
package timebase

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrOverflow is returned when a conversion between time systems cannot
// be represented in an int64 without overflow.
var ErrOverflow = errors.New("timebase: tick conversion overflows int64")

// ErrZeroFrequency is returned when constructing a System whose
// frequency would be zero or negative.
var ErrZeroFrequency = errors.New("timebase: frequency must be positive")

// System is a discrete time system D_f with rational frequency
// Num/Den ticks per second. The zero value is invalid; construct
// systems with New or use the predefined ones.
type System struct {
	// Num and Den define the frequency Num/Den in ticks per second.
	// Both are positive and the fraction is stored in lowest terms.
	Num int64
	Den int64
}

// New returns the discrete time system with frequency num/den ticks per
// second, reduced to lowest terms.
func New(num, den int64) (System, error) {
	if num <= 0 || den <= 0 {
		return System{}, ErrZeroFrequency
	}
	g := gcd(num, den)
	return System{Num: num / g, Den: den / g}, nil
}

// MustNew is New but panics on error. Intended for package-level
// constants with known-good arguments.
func MustNew(num, den int64) System {
	s, err := New(num, den)
	if err != nil {
		panic(err)
	}
	return s
}

// Predefined time systems used throughout the paper's examples.
var (
	// NTSC is D_29.97, North American video: 30000/1001 frames/s.
	NTSC = MustNew(30000, 1001)
	// PAL is D_25, European video: 25 frames/s.
	PAL = MustNew(25, 1)
	// Film is D_24: 24 frames/s.
	Film = MustNew(24, 1)
	// CDAudio is D_44100: compact disc audio sampling.
	CDAudio = MustNew(44100, 1)
	// DATAudio is D_48000: digital audio tape sampling.
	DATAudio = MustNew(48000, 1)
	// MIDIPulse is a 480 pulses-per-quarter tick system at 120 BPM,
	// i.e. 960 ticks per second.
	MIDIPulse = MustNew(960, 1)
	// Millis is a millisecond time system, convenient for editing UIs.
	Millis = MustNew(1000, 1)
)

// Valid reports whether s was properly constructed.
func (s System) Valid() bool { return s.Num > 0 && s.Den > 0 }

// Frequency returns the frequency in ticks per second as a float64.
// Use rational arithmetic (Rescale and friends) wherever exactness
// matters; Frequency is for display and estimation only.
func (s System) Frequency() float64 { return float64(s.Num) / float64(s.Den) }

// Seconds returns the continuous time value D_f(ticks) in seconds as a
// float64. Display/estimation only; see Frequency.
func (s System) Seconds(ticks int64) float64 {
	return float64(ticks) * float64(s.Den) / float64(s.Num)
}

// TickDuration returns the length of one tick in seconds.
func (s System) TickDuration() float64 { return float64(s.Den) / float64(s.Num) }

// TicksFromSeconds returns the tick count nearest to the given number
// of seconds (rounding half away from zero).
func (s System) TicksFromSeconds(sec float64) int64 {
	return int64(math.Round(sec * float64(s.Num) / float64(s.Den)))
}

// String renders the system as "D_f" with f in lowest terms, matching
// the paper's notation (e.g. "D_25", "D_30000/1001").
func (s System) String() string {
	if s.Den == 1 {
		return fmt.Sprintf("D_%d", s.Num)
	}
	return fmt.Sprintf("D_%d/%d", s.Num, s.Den)
}

// Equal reports whether two systems have the same frequency.
func (s System) Equal(t System) bool { return s.Num == t.Num && s.Den == t.Den }

// Rescale converts a tick count from system `from` to system `to`,
// rounding half away from zero when the conversion is inexact.
// It returns ErrOverflow if the result cannot be represented in int64.
//
// The conversion is ticks * (to.Num*from.Den) / (to.Den*from.Num),
// computed with 128-bit intermediate precision.
func Rescale(ticks int64, from, to System) (int64, error) {
	if !from.Valid() || !to.Valid() {
		return 0, ErrZeroFrequency
	}
	if ticks == 0 || from.Equal(to) {
		return ticks, nil
	}
	neg := ticks < 0
	ut := absU64(ticks)

	// numerator factor and denominator, each a product of two positive
	// int64s; reduce before multiplying to keep magnitudes small.
	a, b := to.Num, from.Den // numerator parts
	c, d := to.Den, from.Num // denominator parts
	if g := gcd(a, c); g > 1 {
		a, c = a/g, c/g
	}
	if g := gcd(a, d); g > 1 {
		a, d = a/g, d/g
	}
	if g := gcd(b, c); g > 1 {
		b, c = b/g, c/g
	}
	if g := gcd(b, d); g > 1 {
		b, d = b/g, d/g
	}
	numHi, numLo := bits.Mul64(uint64(a), uint64(b))
	if numHi != 0 {
		return 0, ErrOverflow
	}
	denHi, denLo := bits.Mul64(uint64(c), uint64(d))
	if denHi != 0 {
		return 0, ErrOverflow
	}
	num, den := numLo, denLo

	// q = ut*num/den with rounding, via 128-bit intermediate.
	hi, lo := bits.Mul64(ut, num)
	if hi >= den {
		return 0, ErrOverflow
	}
	q, r := bits.Div64(hi, lo, den)
	// Round half away from zero.
	if r >= den-r && r != 0 {
		if q == math.MaxUint64 {
			return 0, ErrOverflow
		}
		q++
	}
	if neg {
		if q > uint64(math.MaxInt64)+1 {
			return 0, ErrOverflow
		}
		if q == uint64(math.MaxInt64)+1 {
			return math.MinInt64, nil
		}
		return -int64(q), nil
	}
	if q > uint64(math.MaxInt64) {
		return 0, ErrOverflow
	}
	return int64(q), nil
}

// MustRescale is Rescale but panics on error.
func MustRescale(ticks int64, from, to System) int64 {
	v, err := Rescale(ticks, from, to)
	if err != nil {
		panic(err)
	}
	return v
}

// Exact reports whether converting ticks from `from` to `to` is exact
// (no rounding is needed).
func Exact(ticks int64, from, to System) bool {
	if ticks == 0 || from.Equal(to) {
		return true
	}
	fwd, err := Rescale(ticks, from, to)
	if err != nil {
		return false
	}
	back, err := Rescale(fwd, to, from)
	if err != nil {
		return false
	}
	if back != ticks {
		return false
	}
	// Round-trip equality is necessary but not sufficient; verify the
	// remainder directly: ticks*to.Num*from.Den mod (to.Den*from.Num).
	a, b := to.Num, from.Den
	c, d := to.Den, from.Num
	if g := gcd(a, c); g > 1 {
		a, c = a/g, c/g
	}
	if g := gcd(a, d); g > 1 {
		a, d = a/g, d/g
	}
	if g := gcd(b, c); g > 1 {
		b, c = b/g, c/g
	}
	if g := gcd(b, d); g > 1 {
		b, d = b/g, d/g
	}
	numHi, numLo := bits.Mul64(uint64(a), uint64(b))
	denHi, denLo := bits.Mul64(uint64(c), uint64(d))
	if numHi != 0 || denHi != 0 {
		return false
	}
	hi, lo := bits.Mul64(absU64(ticks), numLo)
	if hi >= denLo {
		return false
	}
	_, r := bits.Div64(hi, lo, denLo)
	return r == 0
}

// gcd returns the greatest common divisor of two positive int64s.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func absU64(v int64) uint64 {
	if v < 0 {
		return uint64(-(v + 1)) + 1
	}
	return uint64(v)
}

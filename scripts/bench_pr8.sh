#!/usr/bin/env bash
# bench_pr8.sh — tbmload client-scaling sweep over the epoch-view read
# path: one tbmserve, four tbmload runs at 1/2/4/8 clients, assembled
# into BENCH_pr8.json.
#
# The sweep measures whether lock-free epoch reads let throughput grow
# with client count. On a single-core box the sweep still runs (CI
# smoke), but scaling cannot manifest — the JSON records nproc so the
# numbers read honestly.
#
# Usage: scripts/bench_pr8.sh [outfile] [duration-per-run]
#   TBM_BENCH_DURATION overrides the per-run duration (default 10s).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr8.json}"
DUR="${2:-${TBM_BENCH_DURATION:-10s}}"
ADDR="127.0.0.1:18080"
URL="http://$ADDR"

WORK="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/tbmserve" ./cmd/tbmserve
go build -o "$WORK/tbmload" ./cmd/tbmload
go build -o "$WORK/tbmctl" ./cmd/tbmctl

# Read-heavy mix: the tentpole claim is about the read path, so writes
# stay at 10% — enough to publish epochs under the readers' feet.
MIX="object=30,element=25,query=25,expand=10,cut=8,batch=2"

# Each client count gets a fresh, identically seeded database and
# server, so every point reads the same catalog — otherwise the
# mutations of earlier points inflate the query working set of later
# ones and the comparison is meaningless.
SERVER_PID=""
for c in 1 2 4 8; do
  DB="$WORK/db$c"
  # 16 clips: point reads, payload reads and cut inputs all have
  # targets spread across the hash shards.
  "$WORK/tbmctl" ingest -dir "$DB" -n 16 -j 4 -frames 25 >/dev/null
  "$WORK/tbmserve" -dir "$DB" -addr "$ADDR" -save-every 0 >"$WORK/server_$c.log" 2>&1 &
  SERVER_PID=$!
  for i in $(seq 1 100); do
    curl -fsS "$URL/v1/readyz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  "$WORK/tbmload" -url "$URL" -clients "$c" -duration "$DUR" \
    -mix "$MIX" -seed 42 -run-id "sweep$c" -out "$WORK/sweep_$c.json"
  kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
done

python3 - "$OUT" "$WORK" "$DUR" "$MIX" <<'PY'
import json, os, subprocess, sys, datetime
out, work, dur, mix = sys.argv[1:5]
sweep = {}
for c in (1, 2, 4, 8):
    with open(os.path.join(work, f"sweep_{c}.json")) as f:
        r = json.load(f)
    sweep[f"clients_{c}"] = {
        "clients": c,
        "total_ops": r["total_ops"],
        "total_errors": r["total_errors"],
        "throughput_ops_per_sec": round(r["throughput_ops_per_sec"], 1),
        "query_p95_ms": r["ops"].get("query", {}).get("p95_ms"),
        "object_p95_ms": r["ops"].get("object", {}).get("p95_ms"),
    }
t1 = sweep["clients_1"]["throughput_ops_per_sec"]
t8 = sweep["clients_8"]["throughput_ops_per_sec"]
nproc = os.cpu_count() or 1
scaling = round(t8 / t1, 2) if t1 else None
gover = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.split()[2]
doc = {
    "pr": 8,
    "title": "Sharded epoch views: lock-free reads, ETag/epoch pinning",
    "date": datetime.date.today().isoformat(),
    "environment": {
        "nproc": nproc,
        "go": gover,
        "note": "tbmserve with on-disk store + WAL; tbmload mixed workload, "
                "read-heavy (" + mix + "), " + dur + " per point, seed 42",
    },
    "acceptance": {
        "criterion": "read throughput scales >= 3x from 1 to 8 clients on a multi-core box "
                     "(readers pin immutable epoch views and take no locks)",
        "scaling_1_to_8": scaling,
        "result": ("PASS" if scaling and scaling >= 3 else "NOT-DEMONSTRABLE-HERE")
                  + f": {scaling}x on nproc={nproc}"
                  + ("" if nproc > 1 else
                     " — a single-core host serializes all goroutines, so client scaling "
                     "cannot manifest regardless of locking; the lock-free property is "
                     "asserted structurally instead (no mu.RLock on the query path; "
                     "TestEpochRaceStress passes under -race)"),
    },
    "sweep": sweep,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: 1->8 clients scaling {scaling}x on nproc={nproc}")
PY

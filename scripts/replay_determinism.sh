#!/usr/bin/env bash
# replay_determinism.sh — the record/replay determinism gate.
#
# Records a short seeded workload against a deterministically seeded
# catalog with server-side trace capture on, then replays the trace
# twice, each time against a fresh catalog rebuilt by the identical
# ingest. Asserts:
#
#   1. each replay is response-equivalent to the recording (tbmload
#      replay exits non-zero on any mismatch), and
#   2. the two deterministic replay reports are byte-identical.
#
# The smoke spec runs a single client so the recorded completion order
# is a serialization of the workload: replaying it sequentially
# reproduces every intermediate catalog state exactly.
#
# Usage: scripts/replay_determinism.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC="scripts/specs/replay_smoke.json"
SEED="${TBM_REPLAY_SEED:-7}"
ADDR="127.0.0.1:18091"
URL="http://$ADDR"

WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/tbmserve" ./cmd/tbmserve
go build -o "$WORK/tbmload" ./cmd/tbmload
go build -o "$WORK/tbmctl" ./cmd/tbmctl

# -j 1 ingests sequentially: object IDs and epoch numbers become a
# pure function of the flags, which is what lets a rebuilt catalog
# match the recorded one number for number.
seed_db() {
  "$WORK/tbmctl" ingest -dir "$1" -n 8 -j 1 -seed 3 -frames 10 >/dev/null
}

start_server() { # args: dbdir [extra flags...]
  local db="$1"; shift
  "$WORK/tbmserve" -dir "$db" -addr "$ADDR" -save-every 0 "$@" \
    >"$WORK/server_$(basename "$db").log" 2>&1 &
  SERVER_PID=$!
}

stop_server() {
  kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

echo "== record: seeded workload with trace capture"
seed_db "$WORK/db_rec"
start_server "$WORK/db_rec" -trace-out "$WORK/trace.trc"
"$WORK/tbmload" run -url "$URL" -spec "$SPEC" -seed "$SEED" \
  -wait-ready 30s -time-scale 4 -out "$WORK/run.json"
stop_server # graceful shutdown flushes the trace

for i in 1 2; do
  echo "== replay $i: fresh identically seeded catalog"
  seed_db "$WORK/db_$i"
  start_server "$WORK/db_$i"
  "$WORK/tbmload" replay -url "$URL" -trace "$WORK/trace.trc" \
    -wait-ready 30s -out "$WORK/report_$i.json"
  stop_server
done

if ! cmp "$WORK/report_1.json" "$WORK/report_2.json"; then
  echo "FAIL: replay reports are not byte-identical" >&2
  diff "$WORK/report_1.json" "$WORK/report_2.json" >&2 || true
  exit 1
fi
grep -q '"equivalent": true' "$WORK/report_1.json"
echo "PASS: both replays equivalent, reports byte-identical"

#!/usr/bin/env bash
# policy_sweep.sh — WAL group-commit batch-window policy sweep.
#
# The -wal-batch-window knob trades single-writer latency (every
# journaled mutation waits up to the window for companions) against
# fsync amortization under concurrent writers. This sweep measures the
# trade empirically: one write-heavy open-loop workload per candidate
# window, each against a fresh identically seeded catalog, captured
# server-side (-trace-out) so the scored numbers describe what the
# server actually served. The candidates are then ranked by weighted
# multi-objective fitness (throughput / p99 / error rate) and the
# whole sweep lands in BENCH_pr9.json.
#
# Usage: scripts/policy_sweep.sh [outfile]
#   TBM_SWEEP_SEED overrides the workload seed (default 42).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr9.json}"
SPEC="scripts/specs/wal_sweep.json"
SEED="${TBM_SWEEP_SEED:-42}"
WINDOWS="0s 500us 2ms 8ms"
ADDR="127.0.0.1:18090"
URL="http://$ADDR"

WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/tbmserve" ./cmd/tbmserve
go build -o "$WORK/tbmload" ./cmd/tbmload
go build -o "$WORK/tbmctl" ./cmd/tbmctl

for w in $WINDOWS; do
  echo "== window $w"
  DB="$WORK/db_$w"
  # Fresh deterministic catalog per point: every candidate serves the
  # same objects from the same starting epoch.
  "$WORK/tbmctl" ingest -dir "$DB" -n 12 -j 1 -seed 1 -frames 25 >/dev/null
  "$WORK/tbmserve" -dir "$DB" -addr "$ADDR" -save-every 0 \
    -wal-batch-window "$w" -trace-out "$WORK/trace_$w.trc" \
    >"$WORK/server_$w.log" 2>&1 &
  SERVER_PID=$!
  "$WORK/tbmload" run -url "$URL" -spec "$SPEC" -seed "$SEED" \
    -label "window_$w" -wait-ready 30s -out "$WORK/run_$w.json"
  # Graceful shutdown: the trace is flushed after in-flight requests
  # drain, so the capture is complete before scoring reads it.
  kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
done

CANDS=""
for w in $WINDOWS; do
  CANDS="$CANDS window_$w=$WORK/trace_$w.trc"
done
# shellcheck disable=SC2086
"$WORK/tbmload" score -title "WAL batch-window sweep" \
  -out "$WORK/score.json" $CANDS

python3 - "$OUT" "$WORK" "$SPEC" "$SEED" <<'PY'
import json, os, subprocess, sys, datetime
out, work, spec, seed = sys.argv[1:5]
with open(os.path.join(work, "score.json")) as f:
    score = json.load(f)
with open(spec) as f:
    specdoc = json.load(f)
runs = {}
for cand in score["candidates"]:
    label = cand["label"]
    with open(os.path.join(work, f"run_{label.removeprefix('window_')}.json")) as f:
        r = json.load(f)
    runs[label] = {
        "spec_hash": r["spec_hash"],
        "schedule_hash": r["schedule_hash"],
        "total_ops": r["total_ops"],
        "total_errors": r["total_errors"],
        "total_shed": r["total_shed"],
        "client_throughput_ops_per_sec": round(r["throughput_ops_per_sec"], 1),
        "client_p99_ms": r["overall"]["p99_ms"],
    }
gover = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.split()[2]
doc = {
    "pr": 9,
    "title": "WAL batch-window policy sweep, scored from server-side capture traces",
    "date": datetime.date.today().isoformat(),
    "environment": {
        "nproc": os.cpu_count() or 1,
        "go": gover,
        "git_revision": score["git_revision"],
        "note": "tbmserve with on-disk store + WAL + -trace-out capture; "
                f"tbmload open-loop spec {specdoc['name']}, seed {seed}; "
                "objectives computed from the capture trace (server-side "
                "truth), fitness = weighted min-max-normalized "
                "throughput/p99/error-rate; open-loop load delivers the "
                "same request schedule to every candidate, so throughput "
                "differences are small by construction and the ranking "
                "is dominated by tail latency and robustness",
    },
    "acceptance": {
        "criterion": "the sweep ranks the batch-window candidates by multi-objective "
                     "fitness and names a winner; the chosen window is a measurement, "
                     "not a guess",
        "best": score["best"],
        "result": "PASS: best candidate " + score["best"],
    },
    "weights": score["weights"],
    "candidates": score["candidates"],
    "client_side": runs,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
best = score["best"]
print(f"wrote {out}: best window {best}")
PY

package timedmedia_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
	"timedmedia/internal/fixtures"
)

// Write-path benchmarks (PR 4): journaled mutation throughput under
// concurrent writers. The baseline is one writer with group commit
// disabled — every mutation pays its own fsync, the PR 2 write path.
// The contrast is N writers with the default batch window: concurrent
// appends coalesce into shared fsyncs. BENCH_pr4.json records the
// measured ratio; the acceptance bar is ≥5× for 8 writers.

// benchJournaledWriters drives b.N derived-object adds through
// `writers` goroutines against a journaled on-disk catalog with the
// given group-commit window.
func benchJournaledWriters(b *testing.B, writers int, window time.Duration) {
	dir := b.TempDir()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	db := catalog.New(store, catalog.WithWALBatchWindow(window))
	if err := db.OpenJournal(dir); err != nil {
		b.Fatal(err)
	}
	defer db.CloseJournal()
	clip, err := db.Ingest("clip", fixtures.Video(8, 32, 24, 1), catalog.IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	params := derive.EncodeParams(derive.EditParams{
		Entries: []derive.EditEntry{{Input: 0, From: 0, To: 4}},
	})

	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				name := fmt.Sprintf("cut-%d-%d", w, i)
				if _, err := db.AddDerived(name, "video-edit", []core.ID{clip}, params, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "mut/s")
	s := db.JournalStats()
	if s.Batches > 0 {
		b.ReportMetric(float64(s.Appends)/float64(s.Batches), "rec/fsync")
	}
}

// BenchmarkIngestSingleWriterFsync is the per-append-fsync baseline.
func BenchmarkIngestSingleWriterFsync(b *testing.B) {
	benchJournaledWriters(b, 1, 0)
}

// BenchmarkIngestGroupCommit2 .. 8 measure concurrent writers with the
// default batch window.
func BenchmarkIngestGroupCommit2(b *testing.B) {
	benchJournaledWriters(b, 2, catalog.DefaultWALBatchWindow)
}

func BenchmarkIngestGroupCommit4(b *testing.B) {
	benchJournaledWriters(b, 4, catalog.DefaultWALBatchWindow)
}

func BenchmarkIngestGroupCommit8(b *testing.B) {
	benchJournaledWriters(b, 8, catalog.DefaultWALBatchWindow)
}

// BenchmarkIngestAddBatch8 measures the batched ingest API: 8 writers
// each committing 16-item batches (one group-committed journal write
// per batch).
func BenchmarkIngestAddBatch8(b *testing.B) {
	const batchSize = 16
	dir := b.TempDir()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	db := catalog.New(store, catalog.WithWALBatchWindow(catalog.DefaultWALBatchWindow))
	if err := db.OpenJournal(dir); err != nil {
		b.Fatal(err)
	}
	defer db.CloseJournal()
	clip, err := db.Ingest("clip", fixtures.Video(8, 32, 24, 1), catalog.IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	params := derive.EncodeParams(derive.EditParams{
		Entries: []derive.EditEntry{{Input: 0, From: 0, To: 4}},
	})

	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(int64(batchSize))
				if i > int64(b.N) {
					return
				}
				items := make([]catalog.BatchItem, batchSize)
				for k := range items {
					items[k] = catalog.BatchItem{
						Name:   fmt.Sprintf("cut-%d-%d-%d", w, i, k),
						Op:     "video-edit",
						Inputs: []core.ID{clip},
						Params: params,
					}
				}
				if _, err := db.AddBatch(items); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "mut/s")
}

// BenchmarkIngestGroupCommit8NoWindow isolates the natural batching a
// leader's in-progress fsync provides: no explicit straggler window,
// concurrent arrivals still coalesce behind the token holder.
func BenchmarkIngestGroupCommit8NoWindow(b *testing.B) {
	benchJournaledWriters(b, 8, 0)
}

package timedmedia_test

import (
	"testing"
	"time"

	"timedmedia"
	"timedmedia/internal/audio"
	"timedmedia/internal/frame"
)

// TestFacadeQuickstart exercises the README quickstart path through
// the public facade only.
func TestFacadeQuickstart(t *testing.T) {
	db := timedmedia.NewDB(timedmedia.NewMemStore())

	g := frame.Generator{W: 32, H: 24, Seed: 7}
	frames := make([]*timedmedia.Frame, 25)
	for i := range frames {
		frames[i] = g.Frame(i)
	}
	clip, err := db.Ingest("clip", timedmedia.VideoValue(frames, timedmedia.PAL),
		timedmedia.IngestOptions{Quality: timedmedia.QualityVHS})
	if err != nil {
		t.Fatal(err)
	}
	song, err := db.Ingest("song", timedmedia.AudioValue(audio.Sine(44100, 2, 440, 44100, 0.4), timedmedia.CDAudio),
		timedmedia.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := db.SelectDuration(clip, "cut", 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	show, err := db.AddMultimedia("show", timedmedia.Millis, []timedmedia.ComponentRef{
		{Object: cut, Start: 0},
		{Object: song, Start: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sink timedmedia.PlayerDiscard
	rep, err := timedmedia.PlayComposition(db, show, timedmedia.NewVirtualClock(), &sink, timedmedia.PlayerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Events == 0 || rep.MaxJitter() != 0 {
		t.Errorf("events=%d jitter=%v", sink.Events, rep.MaxJitter())
	}
}

// TestFacadePersistence drives save/load through the facade.
func TestFacadePersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := timedmedia.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := timedmedia.NewDB(store)
	g := frame.Generator{W: 16, H: 16, Seed: 1}
	if _, err := db.Ingest("clip", timedmedia.VideoValue([]*timedmedia.Frame{g.Frame(0)}, timedmedia.PAL),
		timedmedia.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	store2, err := timedmedia.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := timedmedia.LoadDB(dir, store2)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db2.Lookup("clip")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Expand(obj.ID)
	if err != nil || len(v.Video) != 1 {
		t.Fatalf("expand: %v", err)
	}
}

// TestFacadeTimeSystems checks the re-exported time systems.
func TestFacadeTimeSystems(t *testing.T) {
	if timedmedia.PAL.Frequency() != 25 || timedmedia.Film.Frequency() != 24 {
		t.Error("time system constants wrong")
	}
	if s := timedmedia.NTSC.String(); s != "D_30000/1001" {
		t.Errorf("NTSC = %s", s)
	}
}

// TestFacadeSinkFunc checks the functional sink adapter and real
// clock export.
func TestFacadeSinkFunc(t *testing.T) {
	n := 0
	sink := timedmedia.PlayerSinkFunc(func(e timedmedia.PlayerEvent) error {
		n++
		return nil
	})
	if err := sink.Deliver(timedmedia.PlayerEvent{}); err != nil || n != 1 {
		t.Error("sink func not invoked")
	}
	c := timedmedia.NewRealClock()
	if c.Now() > time.Second {
		t.Error("fresh clock should be near zero")
	}
}

// TestFacadeMultimediaBuilder exercises compose.New via the facade.
func TestFacadeMultimediaBuilder(t *testing.T) {
	mm := timedmedia.NewMultimedia("x", timedmedia.Millis)
	if mm.Len() != 0 {
		t.Error("fresh multimedia should be empty")
	}
	if timedmedia.EncodeParams(map[string]int{"a": 1}) == nil {
		t.Error("EncodeParams returned nil")
	}
}

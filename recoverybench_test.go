package timedmedia_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timedmedia/internal/blob"
	"timedmedia/internal/catalog"
	"timedmedia/internal/core"
	"timedmedia/internal/derive"
	"timedmedia/internal/fixtures"
)

// Recovery-time bench (PR 6): with incremental checkpoints compacting
// the WAL behind them, recovery cost is bounded by live state plus the
// uncheckpointed tail — not by mutation history. The scenario churns a
// fixed-size live set (every add past the ring size deletes the oldest
// object) while a checkpoint fires every checkpointEvery mutations,
// exactly what the tbmserve background checkpointer does on its timer.
// BENCH_pr6.json records the measured recovery times; the acceptance
// bar is 1M-mutation recovery within ~2x of 100k-mutation recovery.
//
// The run takes minutes (it is 1.1M journaled commits), so it is
// gated: TBM_RECOVERY_BENCH=1 go test -run TestRecoveryBoundedPR6 -v .

const (
	liveRingSize    = 5_000
	checkpointEvery = 50_000
	benchWriters    = 8
)

type recoveryResult struct {
	Mutations          int     `json:"mutations"`
	LiveObjects        int     `json:"live_objects"`
	WorkloadSeconds    float64 `json:"workload_seconds"`
	RecoveryMillis     float64 `json:"recovery_ms"`
	CheckpointsApplied int     `json:"checkpoints_applied"`
	JournalReplayed    int     `json:"journal_records_replayed"`
	SegmentsReplayed   int     `json:"segments_replayed"`
}

// churnWorkload drives n journaled mutations through `writers`
// goroutines: add a derived cut, and once the live ring is full,
// delete the cut added liveRingSize mutations earlier. Every
// checkpointEvery-th mutation also triggers an incremental checkpoint.
func churnWorkload(t *testing.T, dir string, n int) recoveryResult {
	t.Helper()
	store, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db, err := catalog.Open(dir, store)
	if err != nil {
		t.Fatal(err)
	}
	clip, err := db.Ingest("clip", fixtures.Video(8, 32, 24, 1), catalog.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	params := derive.EncodeParams(derive.EditParams{
		Entries: []derive.EditEntry{{Input: 0, From: 0, To: 4}},
	})

	// ids[i] is the object created by mutation i, published after the
	// commit returns. A deleter that finds a zero (its adder still in
	// flight — writers drift by at most the writer count, far less than
	// the ring size) skips that delete; the ring stays approximately
	// sized either way.
	ids := make([]atomic.Uint64, n)
	start := time.Now()
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < benchWriters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				id, err := db.AddDerived(fmt.Sprintf("cut-%d", i), "video-edit", []core.ID{clip}, params, nil)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ids[i].Store(uint64(id))
				if i >= liveRingSize {
					if victim := ids[i-liveRingSize].Load(); victim != 0 {
						if err := db.Delete(core.ID(victim)); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}
				if (i+1)%checkpointEvery == 0 {
					if err := db.Checkpoint(dir); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	workload := time.Since(start)
	live := db.Len()
	if err := db.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Recovery: a cold Open of the same directory.
	store2, err := blob.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	rstart := time.Now()
	db2, err := catalog.Open(dir, store2)
	if err != nil {
		t.Fatal(err)
	}
	relapsed := time.Since(rstart)
	if err := db2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != live {
		t.Fatalf("recovered %d objects, workload left %d", db2.Len(), live)
	}
	rec := db2.Recovery()
	return recoveryResult{
		Mutations:          n,
		LiveObjects:        live,
		WorkloadSeconds:    workload.Seconds(),
		RecoveryMillis:     float64(relapsed.Microseconds()) / 1e3,
		CheckpointsApplied: rec.CheckpointsApplied,
		JournalReplayed:    rec.JournalRecords,
		SegmentsReplayed:   rec.SegmentsReplayed,
	}
}

func TestRecoveryBoundedPR6(t *testing.T) {
	if os.Getenv("TBM_RECOVERY_BENCH") == "" {
		t.Skip("set TBM_RECOVERY_BENCH=1 to run the PR 6 recovery bench (~minutes)")
	}
	small := churnWorkload(t, t.TempDir(), 100_000)
	large := churnWorkload(t, t.TempDir(), 1_000_000)
	ratio := large.RecoveryMillis / small.RecoveryMillis
	out, _ := json.MarshalIndent(map[string]any{
		"recovery_100k":      small,
		"recovery_1m":        large,
		"ratio_1m_over_100k": fmt.Sprintf("%.2fx", ratio),
	}, "", "  ")
	fmt.Printf("RECOVERY_BENCH %s\n", out)
	if ratio > 2.0 {
		t.Errorf("1M-mutation recovery %.1fms is %.2fx the 100k recovery %.1fms; want <= ~2x",
			large.RecoveryMillis, ratio, small.RecoveryMillis)
	}
}
